// MssgCluster — the framework facade (Figure 3.1).
//
// Assembles a simulated MSSG deployment: F front-end ingestion nodes, B
// back-end storage nodes (each a thread with a private GraphDB in its own
// directory), the Ingestion service between them, and the Query service
// running SPMD over the back-ends.  This is the class the examples and
// benches drive; the individual services remain usable standalone.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "common/temp_dir.hpp"
#include "graphdb/graphdb.hpp"
#include "ingest/decluster.hpp"
#include "ingest/ingest_service.hpp"
#include "query/bfs.hpp"
#include "query/bidirectional_bfs.hpp"
#include "query/connected_components.hpp"
#include "query/graph_stats_analysis.hpp"
#include "query/ms_bfs.hpp"
#include "query/query_scheduler.hpp"
#include "query/query_service.hpp"
#include "runtime/comm.hpp"

namespace mssg {

enum class DeclusterPolicy {
  kHashMod,           ///< vertex granularity, globally known map (default)
  kVertexRoundRobin,  ///< vertex granularity, shared first-seen map
  kEdgeRoundRobin,    ///< edge granularity (searches broadcast)
  kBlockCluster,      ///< windowed connectivity clustering (§3.2)
};

struct ClusterConfig {
  int frontend_nodes = 1;
  int backend_nodes = 4;
  Backend backend = Backend::kGrDB;
  DeclusterPolicy decluster = DeclusterPolicy::kHashMod;
  /// Storage root; one subdirectory per back-end node.  Empty = fresh
  /// temp directory (removed with the cluster).
  std::filesystem::path storage_root;
  /// Template for per-node GraphDB configs (dir is overridden per node).
  GraphDBConfig db;
  IngestOptions ingest;
  /// Concurrent query engine: how many concurrent-safe analyses may run
  /// at once, and the per-query token budget (0 = unlimited).
  QuerySchedulerConfig scheduler;
};

/// Aggregated result of one distributed query.
struct ClusterQueryResult {
  Metadata distance = kUnvisited;
  std::uint64_t levels = 0;
  std::uint64_t edges_scanned = 0;     ///< summed over nodes
  std::uint64_t vertices_expanded = 0;
  std::uint64_t fringe_messages = 0;
  double seconds = 0;                  ///< max over nodes (wall time)
  std::vector<BfsStats> per_node;      ///< rank-indexed raw stats
};

class MssgCluster {
 public:
  explicit MssgCluster(ClusterConfig config);

  MssgCluster(const MssgCluster&) = delete;
  MssgCluster& operator=(const MssgCluster&) = delete;

  /// Streams an in-memory edge set through the Ingestion service,
  /// sharding it across the front-end nodes.
  IngestReport ingest(std::span<const Edge> edges);

  /// Streams arbitrary sources (one per front-end node).
  IngestReport ingest(std::vector<std::unique_ptr<EdgeSource>> sources);

  /// Live ingest: routes a batch straight into the back-end stores via
  /// the partitioner and commits it (flush on every touched node, which
  /// advances those stores' epochs).  The minimal concurrent-write path:
  /// with GraphDBConfig::snapshots on, queries submitted through the
  /// scheduler keep reading their pinned epoch while these batches land.
  /// Bypasses the front-end Ingestion pipeline (no declustering windows,
  /// no ingest report) — use ingest() for bulk loads.
  void live_ingest(std::span<const Edge> edges);

  /// Commits buffered writes on every back-end node (one flush each);
  /// with snapshots on this is the epoch boundary after which new
  /// snapshots see the writes.
  void commit_all();

  /// Runs a distributed BFS over all back-end nodes.
  ClusterQueryResult bfs(VertexId src, VertexId dst, BfsOptions options = {});

  /// Runs any registered analysis; returns rank 0's result vector.
  std::vector<double> run_analysis(const std::string& name,
                                   const std::vector<std::uint64_t>& params);

  /// Submits a registered analysis to the concurrent query engine and
  /// returns immediately.  Concurrent-safe analyses (ms-bfs, cbfs, and
  /// the VertexProgram suite: pagerank, lp-cc, kcore, triangles, sssp,
  /// vp-bfs) share the cluster with up to `scheduler.max_inflight`
  /// peers; anything else is admitted exclusively.  `token_budget`
  /// overrides the scheduler's per-query budget for this query only (an
  /// explicit 0 fails admission).  Await the ticket for the outcome.
  QueryScheduler::Ticket submit_analysis(
      const std::string& name, const std::vector<std::uint64_t>& params,
      std::optional<std::uint64_t> token_budget = std::nullopt);

  /// Full-control submission for the serving front-end: the analysis
  /// runs with the given priority/deadline/budget (SubmitOptions).  The
  /// exclusive flag is decided by the registry — a legacy analysis is
  /// always admitted exclusively, whatever the caller set.
  QueryScheduler::Ticket submit_analysis(
      const std::string& name, const std::vector<std::uint64_t>& params,
      SubmitOptions options);

  /// A cluster job: one invocation per back-end rank against that
  /// rank's GraphDB, under the scheduler's per-query context and with
  /// the rank's committed epoch pinned (snapshot semantics identical to
  /// submit_analysis).  Rank 0's return vector becomes the outcome —
  /// the serving front-end's point lookups run through this.  Jobs must
  /// not mutate shared per-node state (submit them exclusive if they
  /// do).
  using ClusterJob = std::function<std::vector<double>(
      Communicator& comm, QueryContext& ctx, GraphDB& db)>;

  /// Submits a cluster job to the concurrent query engine.
  QueryScheduler::Ticket submit_job(ClusterJob job, SubmitOptions options);

  /// Blocks until a submitted analysis finishes.
  QueryOutcome await_query(const QueryScheduler::Ticket& ticket);

  /// Runs one batched multi-source BFS (1..64 sources share a traversal)
  /// directly on the cluster, outside the scheduler.
  MsBfsStats ms_bfs(std::span<const VertexId> sources, VertexId dst,
                    MsBfsOptions options = {});

  /// Counts the distinct vertices within k hops of src.
  KHopStats khop(VertexId src, Metadata k, BfsOptions options = {});

  /// Bidirectional point-to-point search (meets in the middle; far fewer
  /// edges scanned than bfs() on long paths).
  ClusterQueryResult bidirectional_bfs(VertexId src, VertexId dst,
                                       BfsOptions options = {});

  /// Labels connected components across the cluster (requires the
  /// default hash-mod declustering).
  CcStats connected_components();

  /// Global statistics of the stored graph (Table 5.1 columns).
  DistributedGraphStats graph_stats();

  /// Runs grDB's offline defragmentation on every back-end node (no-op
  /// for other backends).  Returns total chains rewritten — the "idle
  /// time" compaction pass of §3.4.1.
  std::uint64_t defragment_all();

  [[nodiscard]] int backend_nodes() const {
    return config_.backend_nodes;
  }
  [[nodiscard]] GraphDB& node_db(int node) { return *dbs_.at(node); }
  [[nodiscard]] QueryService& queries() { return queries_; }
  [[nodiscard]] QueryScheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] Partitioner& partitioner() { return *partitioner_; }

  /// Aggregate disk statistics over all back-end nodes.
  [[nodiscard]] IoStats total_io() const;

  /// Best-effort eviction of every node's on-disk storage from the OS
  /// page cache (GraphDB::drop_os_page_cache per node) — how cold-leg
  /// benches make "cold" mean the device rather than memory.  Call only
  /// while no query is in flight.
  void drop_storage_page_caches() const;

  /// Per-node metrics registry (rank-indexed).  Each registry is only
  /// written by its node's thread while a query runs; read or merged
  /// only between queries, after run_cluster has joined every thread.
  [[nodiscard]] MetricsRegistry& node_metrics(int node) {
    return *registries_.at(node);
  }

  /// One unified snapshot of everything the cluster counts: per-node
  /// registries (bfs.*, cc.*, span.*, ...), GraphDB I/O and cache
  /// counters (io.*, grdb.*), CommWorld traffic (comm.*), and the
  /// accumulated ingestion metrics (ingest.*).  Safe to call whenever no
  /// query is in flight.
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const;

 private:
  ClusterConfig config_;
  std::optional<TempDir> owned_root_;
  std::shared_ptr<SharedVertexMap> vertex_map_;
  std::unique_ptr<Partitioner> partitioner_;
  std::vector<std::unique_ptr<GraphDB>> dbs_;
  std::vector<std::unique_ptr<MetricsRegistry>> registries_;
  MetricsSnapshot ingest_metrics_;
  CommWorld world_;
  QueryService queries_;
  // Last member: runner threads reference the world and DBs, so the
  // scheduler must be torn down (queries joined) first.
  std::unique_ptr<QueryScheduler> scheduler_;
};

}  // namespace mssg
