#include "mssg/mssg.hpp"

#include <algorithm>
#include <mutex>

#include "common/error.hpp"
#include "graphdb/grdb/grdb.hpp"

namespace mssg {

MssgCluster::MssgCluster(ClusterConfig config)
    : config_(std::move(config)), world_(config_.backend_nodes) {
  MSSG_CHECK(config_.frontend_nodes >= 1);
  MSSG_CHECK(config_.backend_nodes >= 1);

  if (config_.storage_root.empty()) {
    owned_root_.emplace("mssg-cluster");
    config_.storage_root = owned_root_->path();
  }

  vertex_map_ = std::make_shared<SharedVertexMap>();
  const int b = config_.backend_nodes;
  switch (config_.decluster) {
    case DeclusterPolicy::kHashMod:
      partitioner_ = std::make_unique<HashModPartitioner>(b);
      break;
    case DeclusterPolicy::kVertexRoundRobin:
      partitioner_ =
          std::make_unique<VertexRoundRobinPartitioner>(b, vertex_map_);
      break;
    case DeclusterPolicy::kEdgeRoundRobin:
      partitioner_ = std::make_unique<EdgeRoundRobinPartitioner>(b);
      break;
    case DeclusterPolicy::kBlockCluster:
      partitioner_ =
          std::make_unique<BlockClusterPartitioner>(b, vertex_map_);
      break;
  }

  dbs_.reserve(b);
  registries_.reserve(b);
  for (int node = 0; node < b; ++node) {
    GraphDBConfig db_config = config_.db;
    db_config.dir = config_.storage_root / ("node" + std::to_string(node));
    dbs_.push_back(make_graphdb(config_.backend, db_config));
    registries_.push_back(std::make_unique<MetricsRegistry>());
  }
  scheduler_ = std::make_unique<QueryScheduler>(world_, config_.scheduler);
}

IngestReport MssgCluster::ingest(std::span<const Edge> edges) {
  std::vector<std::unique_ptr<EdgeSource>> sources;
  for (const auto shard : shard_edges(edges, config_.frontend_nodes)) {
    sources.push_back(std::make_unique<VectorEdgeSource>(shard));
  }
  return ingest(std::move(sources));
}

IngestReport MssgCluster::ingest(
    std::vector<std::unique_ptr<EdgeSource>> sources) {
  MSSG_CHECK(static_cast<int>(sources.size()) == config_.frontend_nodes);
  std::vector<GraphDB*> backends;
  backends.reserve(dbs_.size());
  for (const auto& db : dbs_) backends.push_back(db.get());
  IngestReport report = run_ingestion(std::move(sources), *partitioner_,
                                      backends, config_.ingest);
  ingest_metrics_.merge(report.metrics);
  return report;
}

ClusterQueryResult MssgCluster::bfs(VertexId src, VertexId dst,
                                    BfsOptions options) {
  if (!partitioner_->globally_known_map() &&
      config_.decluster != DeclusterPolicy::kHashMod) {
    // Vertex map is not globally computable: fall back to fringe
    // broadcast unless the caller already asked for it.
    options.map_known = false;
  }

  ClusterQueryResult result;
  result.per_node.resize(config_.backend_nodes);
  std::mutex merge_mutex;
  run_cluster(world_, [&](Communicator& comm) {
    BfsOptions node_options = options;
    node_options.metrics = registries_[comm.rank()].get();
    const BfsStats stats =
        parallel_oocbfs(comm, *dbs_[comm.rank()], src, dst, node_options);
    std::lock_guard lock(merge_mutex);
    result.per_node[comm.rank()] = stats;
    result.distance = stats.distance;  // globally consistent
    result.levels = std::max(result.levels, stats.levels);
    result.edges_scanned += stats.edges_scanned;
    result.vertices_expanded += stats.vertices_expanded;
    result.fringe_messages += stats.fringe_messages;
    result.seconds = std::max(result.seconds, stats.seconds);
  });
  return result;
}

std::vector<double> MssgCluster::run_analysis(
    const std::string& name, const std::vector<std::uint64_t>& params) {
  std::vector<double> rank0;
  std::mutex merge_mutex;
  run_cluster(world_, [&](Communicator& comm) {
    auto result = queries_.run(name, comm, *dbs_[comm.rank()], params);
    if (comm.rank() == 0) {
      std::lock_guard lock(merge_mutex);
      rank0 = std::move(result);
    }
  });
  return rank0;
}

QueryScheduler::Ticket MssgCluster::submit_analysis(
    const std::string& name, const std::vector<std::uint64_t>& params,
    std::optional<std::uint64_t> token_budget) {
  SubmitOptions options;
  options.token_budget = token_budget;
  return submit_analysis(name, params, options);
}

QueryScheduler::Ticket MssgCluster::submit_analysis(
    const std::string& name, const std::vector<std::uint64_t>& params,
    SubmitOptions options) {
  // Concurrent-safe analyses share the cluster; legacy analyses mutate
  // the per-node metadata stores, so they are admitted exclusively
  // regardless of what the caller put in `options`.
  options.exclusive = !queries_.is_concurrent(name);
  return scheduler_->submit(
      [this, name, params](Communicator& comm, QueryContext& ctx) {
        GraphDB& db = *dbs_[comm.rank()];
        // Pin this rank's committed epoch for the whole analysis: every
        // read the rank thread makes sees exactly that epoch, no matter
        // how far live_ingest advances meanwhile.  With snapshots off
        // begin_snapshot() returns nullptr and the scope is a no-op.
        SnapshotScope snapshot(db.begin_snapshot());
        if (queries_.is_concurrent(name)) {
          return queries_.run_concurrent(name, comm, db, params, ctx);
        }
        return queries_.run(name, comm, db, params);
      },
      options);
}

QueryScheduler::Ticket MssgCluster::submit_job(ClusterJob job,
                                               SubmitOptions options) {
  return scheduler_->submit(
      [this, moved_job = std::move(job)](Communicator& comm,
                                         QueryContext& ctx) {
        GraphDB& db = *dbs_[comm.rank()];
        SnapshotScope snapshot(db.begin_snapshot());
        return moved_job(comm, ctx, db);
      },
      options);
}

void MssgCluster::live_ingest(std::span<const Edge> edges) {
  if (edges.empty()) return;
  std::vector<Rank> targets(edges.size());
  partitioner_->route(edges, targets);
  std::vector<std::vector<Edge>> per_node(dbs_.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    per_node[static_cast<std::size_t>(targets[i])].push_back(edges[i]);
  }
  for (std::size_t node = 0; node < dbs_.size(); ++node) {
    if (per_node[node].empty()) continue;
    dbs_[node]->store_edges(per_node[node]);
    dbs_[node]->flush();
  }
}

void MssgCluster::commit_all() {
  for (const auto& db : dbs_) db->flush();
}

QueryOutcome MssgCluster::await_query(const QueryScheduler::Ticket& ticket) {
  return scheduler_->await(ticket);
}

MsBfsStats MssgCluster::ms_bfs(std::span<const VertexId> sources, VertexId dst,
                               MsBfsOptions options) {
  if (!partitioner_->globally_known_map() &&
      config_.decluster != DeclusterPolicy::kHashMod) {
    options.map_known = false;
  }
  MsBfsStats result;
  std::mutex merge_mutex;
  run_cluster(world_, [&](Communicator& comm) {
    MsBfsOptions node_options = options;
    node_options.metrics = registries_[comm.rank()].get();
    const MsBfsStats stats =
        parallel_msbfs(comm, *dbs_[comm.rank()], sources, dst, node_options);
    std::lock_guard lock(merge_mutex);
    result.distance = stats.distance;      // globally consistent
    result.discovered = stats.discovered;  // globally consistent
    result.levels = std::max(result.levels, stats.levels);
    result.edges_scanned += stats.edges_scanned;
    result.adjacency_fetches += stats.adjacency_fetches;
    result.shared_scans_saved += stats.shared_scans_saved;
    result.fringe_messages += stats.fringe_messages;
    result.truncated = result.truncated || stats.truncated;
    result.seconds = std::max(result.seconds, stats.seconds);
  });
  return result;
}

KHopStats MssgCluster::khop(VertexId src, Metadata k, BfsOptions options) {
  if (!partitioner_->globally_known_map() &&
      config_.decluster != DeclusterPolicy::kHashMod) {
    options.map_known = false;
  }
  KHopStats result;
  std::mutex merge_mutex;
  run_cluster(world_, [&](Communicator& comm) {
    BfsOptions node_options = options;
    node_options.metrics = registries_[comm.rank()].get();
    const auto stats =
        parallel_khop(comm, *dbs_[comm.rank()], src, k, node_options);
    std::lock_guard lock(merge_mutex);
    result.vertices_within = stats.vertices_within;  // globally consistent
    result.edges_scanned += stats.edges_scanned;
    result.seconds = std::max(result.seconds, stats.seconds);
  });
  return result;
}

ClusterQueryResult MssgCluster::bidirectional_bfs(VertexId src, VertexId dst,
                                                  BfsOptions options) {
  MSSG_CHECK(partitioner_->globally_known_map());
  ClusterQueryResult result;
  result.per_node.resize(config_.backend_nodes);
  std::mutex merge_mutex;
  run_cluster(world_, [&](Communicator& comm) {
    BfsOptions node_options = options;
    node_options.metrics = registries_[comm.rank()].get();
    const BfsStats stats =
        bidirectional_oocbfs(comm, *dbs_[comm.rank()], src, dst, node_options);
    std::lock_guard lock(merge_mutex);
    result.per_node[comm.rank()] = stats;
    result.distance = stats.distance;
    result.levels = std::max(result.levels, stats.levels);
    result.edges_scanned += stats.edges_scanned;
    result.vertices_expanded += stats.vertices_expanded;
    result.fringe_messages += stats.fringe_messages;
    result.seconds = std::max(result.seconds, stats.seconds);
  });
  return result;
}

DistributedGraphStats MssgCluster::graph_stats() {
  DistributedGraphStats result;
  std::mutex merge_mutex;
  run_cluster(world_, [&](Communicator& comm) {
    const auto stats = parallel_graph_stats(comm, *dbs_[comm.rank()]);
    registries_[comm.rank()]->counter("stats.runs") += 1;
    if (comm.rank() == 0) {
      std::lock_guard lock(merge_mutex);
      result = stats;  // globally consistent
    }
  });
  return result;
}

CcStats MssgCluster::connected_components() {
  MSSG_CHECK(partitioner_->globally_known_map());
  CcStats result;
  std::mutex merge_mutex;
  run_cluster(world_, [&](Communicator& comm) {
    const auto stats =
        parallel_connected_components(comm, *dbs_[comm.rank()]);
    MetricsRegistry& reg = *registries_[comm.rank()];
    reg.counter("cc.runs") += 1;
    reg.counter("cc.iterations") += stats.iterations;
    reg.counter("cc.edges_scanned") += stats.edges_scanned;
    std::lock_guard lock(merge_mutex);
    result.components = stats.components;  // globally consistent
    result.vertices = stats.vertices;
    result.iterations = std::max(result.iterations, stats.iterations);
    result.edges_scanned += stats.edges_scanned;
    result.seconds = std::max(result.seconds, stats.seconds);
  });
  return result;
}

std::uint64_t MssgCluster::defragment_all() {
  std::uint64_t rewritten = 0;
  for (std::size_t node = 0; node < dbs_.size(); ++node) {
    if (auto* grdb = dynamic_cast<GrDB*>(dbs_[node].get())) {
      MetricsRegistry& reg = *registries_[node];
      const TraceSpan pass_span = reg.span("defrag.pass");
      const std::uint64_t chains = grdb->defragment();
      reg.counter("defrag.chains_rewritten") += chains;
      rewritten += chains;
    }
  }
  return rewritten;
}

IoStats MssgCluster::total_io() const {
  IoStats total;
  for (const auto& db : dbs_) total += db->io_stats();
  return total;
}

void MssgCluster::drop_storage_page_caches() const {
  for (const auto& db : dbs_) db->drop_os_page_cache();
}

MetricsSnapshot MssgCluster::metrics_snapshot() const {
  MetricsSnapshot snap = ingest_metrics_;
  for (const auto& reg : registries_) snap.merge(reg->snapshot());
  for (const auto& db : dbs_) db->publish_metrics(snap);
  world_.publish_metrics(snap);
  snap.merge(scheduler_->metrics_snapshot());
  return snap;
}

}  // namespace mssg
