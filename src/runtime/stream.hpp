// DataCutter-style logical stream: a bounded, unidirectional queue of
// data buffers between a producer filter and a consumer filter.  The
// bound provides back-pressure so a fast producer (e.g. an edge reader)
// cannot outrun a slow consumer (e.g. a MySQL-backed writer) without
// blocking — the behaviour the thesis' ingestion experiments depend on.
//
// Buffers are shared immutable PayloadBuffers (runtime/payload.hpp):
// a producer that fans one block out to several consumer streams
// enqueues references to a single allocation, same as the message layer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/payload.hpp"

namespace mssg {

class DataStream {
 public:
  explicit DataStream(std::size_t capacity = 64) : capacity_(capacity) {}

  DataStream(const DataStream&) = delete;
  DataStream& operator=(const DataStream&) = delete;

  /// Blocks while the stream is full.  Buffers pushed after close() are
  /// dropped (the consumer has finished).
  void put(PayloadBuffer buffer) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return;
    queue_.push_back(std::move(buffer));
    not_empty_.notify_one();
  }

  /// Blocks until a buffer is available; returns nullopt at end-of-stream
  /// (closed and drained).
  std::optional<PayloadBuffer> get() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    PayloadBuffer buffer = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return buffer;
  }

  /// Non-blocking get(): returns a buffer only if one is already queued,
  /// nullopt otherwise (including at end-of-stream).  Lets a consumer
  /// coalesce everything that arrived while it was busy without ever
  /// waiting on the producer.
  std::optional<PayloadBuffer> try_get() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    PayloadBuffer buffer = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return buffer;
  }

  /// Producer signals end-of-stream.  Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PayloadBuffer> queue_;
  bool closed_ = false;
};

}  // namespace mssg
