// Shared immutable payload buffer for the runtime's message layer.
//
// The simulated wire used to deep-copy every payload per hop: broadcast
// copied the fringe once per peer, allgather copied the full slot table
// once per rank.  PayloadBuffer makes a payload a refcounted immutable
// byte array instead: building one costs a single allocation, and every
// further hop (broadcast fan-out, mailbox enqueue, allgather slot read)
// moves or copies a shared_ptr.  Immutability is what makes the sharing
// race-free — after construction no byte is ever written, so concurrent
// readers on receiver ranks need no synchronization beyond the refcount
// (tsan-verified by the sanitizer CI).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace mssg {

class PayloadBuffer {
 public:
  /// Empty payload (e.g. level-end markers); no allocation.
  PayloadBuffer() = default;

  /// Adopts the vector's storage.  Implicit on purpose: every
  /// pre-existing call site builds a std::vector<std::byte> payload, and
  /// wrapping it is the "exactly one allocation" the zero-copy contract
  /// counts (the shared_ptr control block; the byte storage moves).
  PayloadBuffer(std::vector<std::byte> bytes)
      : bytes_(bytes.empty()
                   ? nullptr
                   : std::make_shared<const std::vector<std::byte>>(
                         std::move(bytes))) {}

  [[nodiscard]] std::span<const std::byte> span() const {
    return bytes_ ? std::span<const std::byte>(*bytes_)
                  : std::span<const std::byte>();
  }
  operator std::span<const std::byte>() const { return span(); }

  [[nodiscard]] const std::byte* data() const {
    return bytes_ ? bytes_->data() : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return bytes_ ? bytes_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::byte operator[](std::size_t i) const {
    return (*bytes_)[i];
  }

  /// Number of live references to the underlying bytes (0 when empty).
  /// Test/diagnostic hook for the one-allocation broadcast contract.
  [[nodiscard]] long use_count() const { return bytes_ ? bytes_.use_count() : 0; }

  /// True when both views share the same underlying storage.
  [[nodiscard]] bool shares_storage_with(const PayloadBuffer& other) const {
    return bytes_ != nullptr && bytes_ == other.bytes_;
  }

 private:
  std::shared_ptr<const std::vector<std::byte>> bytes_;
};

}  // namespace mssg
