// MPI-flavoured communicator over in-process mailboxes.
//
// The thesis evaluates MSSG on a 64-node cluster with DataCutter/MPI as
// transport.  No MPI installation is assumed here: CommWorld provides p
// ranks (threads) with send/recv/probe plus the collectives the
// framework needs (barrier, broadcast, allreduce, allgather).  Message
// counts and synchronization structure are identical to the MPI runs;
// only the wire is simulated.
//
// Payloads are shared immutable PayloadBuffers (runtime/payload.hpp):
// broadcast builds the payload once and enqueues p-1 references, and
// allgather hands every rank references into the shared slot table, so
// a B-byte collective costs O(B) memory total instead of O(p*B).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "runtime/mailbox.hpp"

namespace mssg {

class Communicator;

/// Shared state for a group of ranks.  Create once, then hand each rank a
/// Communicator via comm(rank).
class CommWorld {
 public:
  explicit CommWorld(int size);

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Communicator comm(Rank rank);

  /// Derives a sub-world with the same rank count but PRIVATE mailboxes,
  /// barrier, and collective scratch — the isolation the concurrent
  /// query engine needs so interleaved queries cannot cross message
  /// streams or collide inside a collective.  Traffic counters stay
  /// shared with the parent, so cluster-level comm.* metrics keep
  /// accumulating across every stream.  `stream_id` labels the split for
  /// diagnostics.
  [[nodiscard]] std::unique_ptr<CommWorld> split(std::uint64_t stream_id);

  /// 0 for a root world; the id passed to split() otherwise.
  [[nodiscard]] std::uint64_t stream_id() const { return stream_id_; }

  /// Total messages pushed since construction (for experiment reporting).
  /// Safe to call while sender threads are in flight: the counters are
  /// relaxed atomics, so a concurrent read sees some recent total.
  [[nodiscard]] std::uint64_t messages_sent() const;
  [[nodiscard]] std::uint64_t bytes_sent() const;

  /// Wire-codec accounting (see common/vertex_codec.hpp): what the
  /// shipped payloads would have cost raw vs what they cost encoded, and
  /// how many broadcast deep copies the shared PayloadBuffer replaced
  /// with references.
  [[nodiscard]] std::uint64_t payload_bytes_raw() const;
  [[nodiscard]] std::uint64_t payload_bytes_encoded() const;
  [[nodiscard]] std::uint64_t broadcast_copies_avoided() const;

  /// Adds the traffic counters to a merged snapshot ("comm.messages_sent",
  /// "comm.bytes_sent", "comm.payload_bytes_raw",
  /// "comm.payload_bytes_encoded", "comm.broadcast_copies_avoided").
  void publish_metrics(MetricsSnapshot& snap) const;

  /// Bytes currently retained in the allgather scratch slots.  Zero when
  /// no collective is in flight (slots release their references once
  /// every rank has copied out); only meaningful between cluster runs
  /// (quiescent).
  [[nodiscard]] std::size_t gather_slot_bytes() const {
    std::size_t total = 0;
    for (const auto& slot : gather_slots_) total += slot.size();
    return total;
  }

 private:
  friend class Communicator;

  // Traffic counters.  Monotonic sums read by monitoring code while
  // senders run; relaxed atomics — no ordering is implied between them,
  // only that each read sees a valid total.  Shared (via shared_ptr)
  // between a root world and every sub-world split() derives from it.
  struct TrafficCounters {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> payload_bytes_raw{0};
    std::atomic<std::uint64_t> payload_bytes_encoded{0};
    std::atomic<std::uint64_t> broadcast_copies_avoided{0};
  };

  CommWorld(int size, std::shared_ptr<TrafficCounters> traffic,
            std::uint64_t stream_id);

  void barrier_wait();

  // One allreduce slot per rank, padded to a cache line: every rank
  // writes its own slot and reads all of them inside every collective,
  // so adjacent uint64_t entries would false-share a line across all
  // rank threads.
  struct alignas(64) ReduceSlot {
    std::uint64_t value = 0;
  };
  static_assert(sizeof(ReduceSlot) == 64,
                "reduce slots must each own a full cache line");

  int size_;
  std::uint64_t stream_id_ = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Central barrier (sense-reversing via generation counter).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Scratch for allreduce/allgather: one slot per rank.
  std::vector<ReduceSlot> reduce_slots_;
  std::vector<PayloadBuffer> gather_slots_;

  std::shared_ptr<TrafficCounters> traffic_;
};

/// A rank's endpoint.  Cheap to copy; all state lives in the CommWorld.
class Communicator {
 public:
  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const { return world_->size(); }

  /// Non-blocking (infinitely buffered) point-to-point send.  The
  /// payload converts from std::vector<std::byte> (one allocation) or
  /// passes through as an already-shared buffer (zero).
  void send(Rank dest, int tag, PayloadBuffer payload) const;

  /// Sends the same payload to every other rank (self excluded).  The
  /// payload is allocated exactly once; each peer's mailbox receives a
  /// reference ("comm.broadcast_copies_avoided" counts the p-1 deep
  /// copies this replaces).  Wire accounting still charges the payload
  /// once per peer — the simulated interconnect ships it p-1 times.
  void broadcast(int tag, PayloadBuffer payload) const;

  /// Records one encoded payload's compression outcome into the world's
  /// codec counters.  Called by the query/ingest layers next to their
  /// encode_*_set calls (the communicator itself is payload-agnostic).
  void record_payload_encoding(std::size_t raw_bytes,
                               std::size_t encoded_bytes) const;

  /// Blocking selective receive.
  [[nodiscard]] Message recv(int tag = kAnyTag, Rank source = kAnyRank) const {
    return world_->mailboxes_[rank_]->recv(tag, source);
  }

  [[nodiscard]] std::optional<Message> try_recv(int tag = kAnyTag,
                                                Rank source = kAnyRank) const {
    return world_->mailboxes_[rank_]->try_recv(tag, source);
  }

  [[nodiscard]] bool probe(int tag = kAnyTag, Rank source = kAnyRank) const {
    return world_->mailboxes_[rank_]->probe(tag, source);
  }

  /// Collective: all ranks must call.
  void barrier() const { world_->barrier_wait(); }

  /// Collective sum / max / min / logical-or over one value per rank.
  [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t allreduce_max(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t allreduce_min(std::uint64_t value) const;
  [[nodiscard]] bool allreduce_or(bool value) const {
    return allreduce_max(value ? 1 : 0) != 0;
  }

  /// Collective bitwise OR — how the multi-source BFS merges its 64-bit
  /// per-source found/active masks in one exchange per level.
  [[nodiscard]] std::uint64_t allreduce_bor(std::uint64_t value) const;

  /// Collective: every rank contributes a byte buffer, all ranks receive
  /// all buffers (indexed by rank) as shared references — a p-rank
  /// allgather of B bytes costs O(B) total, not O(p*B).  Traffic
  /// accounting charges each rank's contribution once (one message, B
  /// bytes): the shared-memory collective deposits each payload a single
  /// time, unlike broadcast's per-peer wire fan-out.
  [[nodiscard]] std::vector<PayloadBuffer> allgather(
      PayloadBuffer contribution) const;

 private:
  friend class CommWorld;
  Communicator(CommWorld* world, Rank rank) : world_(world), rank_(rank) {}

  CommWorld* world_;
  Rank rank_;
};

/// Runs `body(comm)` on `size` threads, one per rank, propagating the
/// first exception thrown by any rank.  This is the simulated cluster
/// job launcher (mpirun analogue).
void run_cluster(int size, const std::function<void(Communicator&)>& body);

/// Variant reusing an existing world (so traffic counters accumulate).
void run_cluster(CommWorld& world,
                 const std::function<void(Communicator&)>& body);

}  // namespace mssg
