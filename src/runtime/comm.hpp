// MPI-flavoured communicator over in-process mailboxes.
//
// The thesis evaluates MSSG on a 64-node cluster with DataCutter/MPI as
// transport.  No MPI installation is assumed here: CommWorld provides p
// ranks (threads) with send/recv/probe plus the collectives the
// framework needs (barrier, broadcast, allreduce, allgather).  Message
// counts and synchronization structure are identical to the MPI runs;
// only the wire is simulated.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "runtime/mailbox.hpp"

namespace mssg {

class Communicator;

/// Shared state for a group of ranks.  Create once, then hand each rank a
/// Communicator via comm(rank).
class CommWorld {
 public:
  explicit CommWorld(int size);

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Communicator comm(Rank rank);

  /// Total messages pushed since construction (for experiment reporting).
  /// Safe to call while sender threads are in flight: the counters are
  /// relaxed atomics, so a concurrent read sees some recent total.
  [[nodiscard]] std::uint64_t messages_sent() const;
  [[nodiscard]] std::uint64_t bytes_sent() const;

  /// Adds the traffic counters to a merged snapshot
  /// ("comm.messages_sent" / "comm.bytes_sent").
  void publish_metrics(MetricsSnapshot& snap) const;

  /// Bytes currently retained in the allgather scratch slots.  Zero when
  /// no collective is in flight (slots are released once every rank has
  /// copied out); only meaningful between cluster runs (quiescent).
  [[nodiscard]] std::size_t gather_slot_bytes() const {
    std::size_t total = 0;
    for (const auto& slot : gather_slots_) total += slot.size();
    return total;
  }

 private:
  friend class Communicator;

  void barrier_wait();

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Central barrier (sense-reversing via generation counter).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Scratch for allreduce/allgather: one slot per rank.
  std::vector<std::uint64_t> reduce_slots_;
  std::vector<std::vector<std::byte>> gather_slots_;

  // Traffic counters.  Monotonic sums read by monitoring code while
  // senders run; relaxed atomics — no ordering is implied between them,
  // only that each read sees a valid total.
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

/// A rank's endpoint.  Cheap to copy; all state lives in the CommWorld.
class Communicator {
 public:
  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const { return world_->size(); }

  /// Non-blocking (infinitely buffered) point-to-point send.
  void send(Rank dest, int tag, std::vector<std::byte> payload) const;

  /// Sends the same payload to every other rank (self excluded).
  void broadcast(int tag, const std::vector<std::byte>& payload) const;

  /// Blocking selective receive.
  [[nodiscard]] Message recv(int tag = kAnyTag, Rank source = kAnyRank) const {
    return world_->mailboxes_[rank_]->recv(tag, source);
  }

  [[nodiscard]] std::optional<Message> try_recv(int tag = kAnyTag,
                                                Rank source = kAnyRank) const {
    return world_->mailboxes_[rank_]->try_recv(tag, source);
  }

  [[nodiscard]] bool probe(int tag = kAnyTag, Rank source = kAnyRank) const {
    return world_->mailboxes_[rank_]->probe(tag, source);
  }

  /// Collective: all ranks must call.
  void barrier() const { world_->barrier_wait(); }

  /// Collective sum / max / min / logical-or over one value per rank.
  [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t allreduce_max(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t allreduce_min(std::uint64_t value) const;
  [[nodiscard]] bool allreduce_or(bool value) const {
    return allreduce_max(value ? 1 : 0) != 0;
  }

  /// Collective: every rank contributes a byte buffer, all ranks receive
  /// all buffers (indexed by rank).
  [[nodiscard]] std::vector<std::vector<std::byte>> allgather(
      std::vector<std::byte> contribution) const;

 private:
  friend class CommWorld;
  Communicator(CommWorld* world, Rank rank) : world_(world), rank_(rank) {}

  CommWorld* world_;
  Rank rank_;
};

/// Runs `body(comm)` on `size` threads, one per rank, propagating the
/// first exception thrown by any rank.  This is the simulated cluster
/// job launcher (mpirun analogue).
void run_cluster(int size, const std::function<void(Communicator&)>& body);

/// Variant reusing an existing world (so traffic counters accumulate).
void run_cluster(CommWorld& world,
                 const std::function<void(Communicator&)>& body);

}  // namespace mssg
