#include "runtime/filter.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mssg {

// Wiring model: for a connection P(out) -> C(in), one DataStream is
// created per *consumer copy*.  Every producer copy sees all of those
// streams on its output port (output(port, i) addresses consumer copy i),
// which lets a distributing filter route buffers to a specific consumer —
// exactly how the Ingestion service sends partitioned edge blocks to
// chosen back-end GraphDB writers.  Each consumer copy reads a single
// merged stream on its input port, fed by all producer copies.  A stream
// closes when every producer copy of the connection has returned.

void FilterGraph::add_filter(const std::string& name, Factory factory,
                             int copies) {
  MSSG_CHECK(copies >= 1);
  MSSG_CHECK(!nodes_.contains(name));
  nodes_.emplace(name, Node{std::move(factory), copies});
}

void FilterGraph::connect(const std::string& producer,
                          const std::string& out_port,
                          const std::string& consumer,
                          const std::string& in_port,
                          std::size_t stream_capacity) {
  MSSG_CHECK(nodes_.contains(producer));
  MSSG_CHECK(nodes_.contains(consumer));
  connections_.push_back(
      Connection{producer, out_port, consumer, in_port, stream_capacity});
}

void FilterGraph::run() {
  struct StreamGroup {
    std::vector<std::unique_ptr<DataStream>> streams;  // one per consumer copy
    std::shared_ptr<std::atomic<int>> producers_left;
  };
  std::vector<StreamGroup> groups;
  groups.reserve(connections_.size());
  for (const auto& conn : connections_) {
    StreamGroup group;
    const int consumer_copies = nodes_.at(conn.consumer).copies;
    for (int i = 0; i < consumer_copies; ++i) {
      group.streams.push_back(std::make_unique<DataStream>(conn.capacity));
    }
    group.producers_left = std::make_shared<std::atomic<int>>(
        nodes_.at(conn.producer).copies);
    groups.push_back(std::move(group));
  }

  struct Instance {
    std::unique_ptr<Filter> filter;
    FilterContext ctx;
    // Streams this instance produces into, with their group refcounts, so
    // the runner can close them when the last producer copy finishes.
    std::vector<std::pair<std::shared_ptr<std::atomic<int>>,
                          std::vector<DataStream*>>> produced;
  };
  std::vector<Instance> instances;

  for (const auto& [name, node] : nodes_) {
    for (int copy = 0; copy < node.copies; ++copy) {
      std::map<std::string, std::vector<DataStream*>> inputs;
      std::map<std::string, std::vector<DataStream*>> outputs;
      std::vector<std::pair<std::shared_ptr<std::atomic<int>>,
                            std::vector<DataStream*>>> produced;
      for (std::size_t c = 0; c < connections_.size(); ++c) {
        const auto& conn = connections_[c];
        auto& group = groups[c];
        if (conn.consumer == name) {
          inputs[conn.in_port].push_back(group.streams[copy].get());
        }
        if (conn.producer == name) {
          std::vector<DataStream*> endpoints;
          endpoints.reserve(group.streams.size());
          for (auto& s : group.streams) endpoints.push_back(s.get());
          outputs[conn.out_port] = endpoints;
          produced.emplace_back(group.producers_left, std::move(endpoints));
        }
      }
      instances.push_back(Instance{
          node.factory(),
          FilterContext(copy, node.copies, std::move(inputs),
                        std::move(outputs)),
          std::move(produced)});
    }
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(instances.size());
  for (auto& instance : instances) {
    threads.emplace_back([&instance, &error_mutex, &first_error] {
      try {
        instance.filter->run(instance.ctx);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Close produced streams once the last producer copy is done —
      // also on error, so consumers drain and terminate instead of
      // blocking forever.
      for (auto& [refcount, endpoints] : instance.produced) {
        if (refcount->fetch_sub(1) == 1) {
          for (auto* stream : endpoints) stream->close();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mssg
