// Per-rank mailbox: a thread-safe queue with MPI-style selective receive
// (match on tag and/or source).  Senders never block — the simulated
// interconnect is infinitely buffered, which matches the non-blocking
// DataCutter stream sends the pipelined BFS relies on ("sending a small
// message ... is a non-blocking operation").
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/message.hpp"

namespace mssg {

class Mailbox {
 public:
  void push(Message msg) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Blocks until a matching message arrives.
  Message recv(int tag = kAnyTag, Rank source = kAnyRank) {
    std::unique_lock lock(mutex_);
    while (true) {
      if (auto msg = take_matching(tag, source)) return std::move(*msg);
      cv_.wait(lock);
    }
  }

  /// Non-blocking receive.
  std::optional<Message> try_recv(int tag = kAnyTag, Rank source = kAnyRank) {
    std::lock_guard lock(mutex_);
    return take_matching(tag, source);
  }

  /// True if a matching message is waiting (MPI_Iprobe analogue).
  [[nodiscard]] bool probe(int tag = kAnyTag, Rank source = kAnyRank) const {
    std::lock_guard lock(mutex_);
    for (const auto& msg : queue_) {
      if (matches(msg, tag, source)) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  static bool matches(const Message& msg, int tag, Rank source) {
    return (tag == kAnyTag || msg.tag == tag) &&
           (source == kAnyRank || msg.source == source);
  }

  std::optional<Message> take_matching(int tag, Rank source) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, tag, source)) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    return std::nullopt;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace mssg
