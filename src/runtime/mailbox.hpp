// Per-rank mailbox: a thread-safe queue with MPI-style selective receive
// (match on tag and/or source).  Senders never block — the simulated
// interconnect is infinitely buffered, which matches the non-blocking
// DataCutter stream sends the pipelined BFS relies on ("sending a small
// message ... is a non-blocking operation").
//
// Wakeup protocol: each blocked recv registers a stack-allocated waiter
// node (its tag/source filter plus a private condition variable) on an
// intrusive list.  push() walks that list and signals exactly the first
// still-sleeping waiter whose filter matches the new message — no
// notify_all thundering herd, and a waiter only rescans the deque when
// mail it can actually take has arrived (a woken waiter whose message
// was stolen by a concurrent try_recv re-registers and sleeps again).
// Messages pushed while every matching waiter is already signalled stay
// queued and are found by the front-scan every recv performs before
// sleeping, so no wakeup is ever lost.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/message.hpp"

namespace mssg {

class Mailbox {
 public:
  void push(Message msg) {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(msg));
    const Message& arrived = queue_.back();
    for (Waiter* w = waiters_; w != nullptr; w = w->next) {
      if (w->signalled || !matches(arrived, w->tag, w->source)) continue;
      w->signalled = true;
      // Notify under the lock: the waiter node lives on the receiver's
      // stack and is destroyed once recv returns, which it cannot do
      // while we hold the mutex.
      w->cv.notify_one();
      break;  // one message serves exactly one recv
    }
  }

  /// Blocks until a matching message arrives.
  Message recv(int tag = kAnyTag, Rank source = kAnyRank) {
    std::unique_lock lock(mutex_);
    while (true) {
      if (auto msg = take_matching(tag, source)) return std::move(*msg);
      Waiter self(tag, source);
      self.next = waiters_;
      waiters_ = &self;
      self.cv.wait(lock, [&] { return self.signalled; });
      unlink(&self);
    }
  }

  /// Non-blocking receive.
  std::optional<Message> try_recv(int tag = kAnyTag, Rank source = kAnyRank) {
    std::lock_guard lock(mutex_);
    return take_matching(tag, source);
  }

  /// True if a matching message is waiting (MPI_Iprobe analogue).
  [[nodiscard]] bool probe(int tag = kAnyTag, Rank source = kAnyRank) const {
    std::lock_guard lock(mutex_);
    for (const auto& msg : queue_) {
      if (matches(msg, tag, source)) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  struct Waiter {
    Waiter(int tag_, Rank source_) : tag(tag_), source(source_) {}
    int tag;
    Rank source;
    std::condition_variable cv;
    bool signalled = false;
    Waiter* next = nullptr;
  };

  static bool matches(const Message& msg, int tag, Rank source) {
    return (tag == kAnyTag || msg.tag == tag) &&
           (source == kAnyRank || msg.source == source);
  }

  std::optional<Message> take_matching(int tag, Rank source) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, tag, source)) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    return std::nullopt;
  }

  void unlink(Waiter* node) {
    for (Waiter** slot = &waiters_; *slot != nullptr; slot = &(*slot)->next) {
      if (*slot == node) {
        *slot = node->next;
        return;
      }
    }
  }

  mutable std::mutex mutex_;
  std::deque<Message> queue_;
  Waiter* waiters_ = nullptr;  // guarded by mutex_
};

}  // namespace mssg
