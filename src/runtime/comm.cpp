#include "runtime/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace mssg {

CommWorld::CommWorld(int size)
    : CommWorld(size, std::make_shared<TrafficCounters>(), 0) {}

CommWorld::CommWorld(int size, std::shared_ptr<TrafficCounters> traffic,
                     std::uint64_t stream_id)
    : size_(size), stream_id_(stream_id), traffic_(std::move(traffic)) {
  MSSG_CHECK(size >= 1);
  mailboxes_.reserve(size);
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  reduce_slots_.resize(size);
  gather_slots_.resize(size);
}

std::unique_ptr<CommWorld> CommWorld::split(std::uint64_t stream_id) {
  // Private mailboxes/barrier/scratch, shared traffic accounting.
  return std::unique_ptr<CommWorld>(
      new CommWorld(size_, traffic_, stream_id));
}

Communicator CommWorld::comm(Rank rank) {
  MSSG_CHECK(rank >= 0 && rank < size_);
  return Communicator(this, rank);
}

std::uint64_t CommWorld::messages_sent() const {
  return traffic_->messages_sent.load(std::memory_order_relaxed);
}
std::uint64_t CommWorld::bytes_sent() const {
  return traffic_->bytes_sent.load(std::memory_order_relaxed);
}
std::uint64_t CommWorld::payload_bytes_raw() const {
  return traffic_->payload_bytes_raw.load(std::memory_order_relaxed);
}
std::uint64_t CommWorld::payload_bytes_encoded() const {
  return traffic_->payload_bytes_encoded.load(std::memory_order_relaxed);
}
std::uint64_t CommWorld::broadcast_copies_avoided() const {
  return traffic_->broadcast_copies_avoided.load(std::memory_order_relaxed);
}

void CommWorld::publish_metrics(MetricsSnapshot& snap) const {
  snap.add("comm.messages_sent", messages_sent());
  snap.add("comm.bytes_sent", bytes_sent());
  snap.add("comm.payload_bytes_raw", payload_bytes_raw());
  snap.add("comm.payload_bytes_encoded", payload_bytes_encoded());
  snap.add("comm.broadcast_copies_avoided", broadcast_copies_avoided());
}

void CommWorld::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_generation_ != my_generation; });
}

void Communicator::send(Rank dest, int tag, PayloadBuffer payload) const {
  MSSG_CHECK(dest >= 0 && dest < size());
  world_->traffic_->messages_sent.fetch_add(1, std::memory_order_relaxed);
  world_->traffic_->bytes_sent.fetch_add(payload.size(),
                                         std::memory_order_relaxed);
  world_->mailboxes_[dest]->push(Message{tag, rank_, std::move(payload)});
}

void Communicator::broadcast(int tag, PayloadBuffer payload) const {
  if (size() <= 1) return;
  // Enqueue references to the one shared buffer; every peer after the
  // first would have required a deep copy under the owned-vector wire.
  for (Rank r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send(r, tag, payload);
  }
  world_->traffic_->broadcast_copies_avoided.fetch_add(
      static_cast<std::uint64_t>(size() - 1), std::memory_order_relaxed);
}

void Communicator::record_payload_encoding(std::size_t raw_bytes,
                                           std::size_t encoded_bytes) const {
  world_->traffic_->payload_bytes_raw.fetch_add(raw_bytes,
                                                std::memory_order_relaxed);
  world_->traffic_->payload_bytes_encoded.fetch_add(encoded_bytes,
                                                    std::memory_order_relaxed);
}

std::uint64_t Communicator::allreduce_sum(std::uint64_t value) const {
  world_->reduce_slots_[rank_].value = value;
  barrier();
  std::uint64_t total = 0;
  for (int r = 0; r < size(); ++r) total += world_->reduce_slots_[r].value;
  barrier();
  return total;
}

std::uint64_t Communicator::allreduce_max(std::uint64_t value) const {
  world_->reduce_slots_[rank_].value = value;
  barrier();
  std::uint64_t best = 0;
  for (int r = 0; r < size(); ++r) {
    best = std::max(best, world_->reduce_slots_[r].value);
  }
  barrier();
  return best;
}

std::uint64_t Communicator::allreduce_min(std::uint64_t value) const {
  world_->reduce_slots_[rank_].value = value;
  barrier();
  std::uint64_t best = ~std::uint64_t{0};
  for (int r = 0; r < size(); ++r) {
    best = std::min(best, world_->reduce_slots_[r].value);
  }
  barrier();
  return best;
}

std::uint64_t Communicator::allreduce_bor(std::uint64_t value) const {
  world_->reduce_slots_[rank_].value = value;
  barrier();
  std::uint64_t merged = 0;
  for (int r = 0; r < size(); ++r) merged |= world_->reduce_slots_[r].value;
  barrier();
  return merged;
}

std::vector<PayloadBuffer> Communicator::allgather(
    PayloadBuffer contribution) const {
  // Each rank deposits its payload exactly once; the fan-out to the
  // other p-1 ranks is reference sharing, not wire traffic, so the
  // collective charges one message of contribution-size bytes per rank.
  world_->traffic_->messages_sent.fetch_add(1, std::memory_order_relaxed);
  world_->traffic_->bytes_sent.fetch_add(contribution.size(),
                                         std::memory_order_relaxed);
  world_->gather_slots_[rank_] = std::move(contribution);
  barrier();
  std::vector<PayloadBuffer> all = world_->gather_slots_;
  barrier();
  // The second barrier guarantees every rank has taken its references,
  // so this rank's slot can drop its reference now instead of pinning
  // the payload until the next collective.  Only rank r touches slot r
  // outside the two barriers, so no synchronization beyond them is
  // needed.
  world_->gather_slots_[rank_] = PayloadBuffer();
  return all;
}

void run_cluster(CommWorld& world,
                 const std::function<void(Communicator&)>& body) {
  const int size = world.size();
  std::vector<std::thread> threads;
  threads.reserve(size);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (Rank r = 0; r < size; ++r) {
    threads.emplace_back([&world, &body, &error_mutex, &first_error, r] {
      try {
        Communicator comm = world.comm(r);
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void run_cluster(int size, const std::function<void(Communicator&)>& body) {
  CommWorld world(size);
  run_cluster(world, body);
}

}  // namespace mssg
