// DataCutter stand-in: filters connected by logical streams.
//
// DataCutter implements "application processing structure ... as a set of
// components, referred to as filters, that exchange data through logical
// streams" (§3.1).  FilterGraph wires filter instances (possibly several
// transparent copies of one filter) to named streams and runs each
// instance on its own thread — the placement step of DataCutter's
// filtering service, with threads standing in for cluster hosts.
//
// A filter reads buffers from its input streams and writes buffers to its
// output streams only; when every producer of a stream finishes, the
// stream closes and consumers see end-of-stream.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runtime/stream.hpp"

namespace mssg {

/// Execution context handed to a running filter instance.
class FilterContext {
 public:
  FilterContext(int copy_index, int copies,
                std::map<std::string, std::vector<DataStream*>> inputs,
                std::map<std::string, std::vector<DataStream*>> outputs)
      : copy_index_(copy_index),
        copies_(copies),
        inputs_(std::move(inputs)),
        outputs_(std::move(outputs)) {}

  /// Index of this transparent copy (0-based) and total copy count.
  [[nodiscard]] int copy_index() const { return copy_index_; }
  [[nodiscard]] int copies() const { return copies_; }

  /// Input endpoints bound to a named port (one per producer copy; the
  /// runtime merges them — reading drains them round-robin-ish via any).
  [[nodiscard]] DataStream& input(const std::string& port, int i = 0) const {
    return *endpoint(inputs_, port, i);
  }
  [[nodiscard]] std::size_t input_width(const std::string& port) const {
    auto it = inputs_.find(port);
    return it == inputs_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] DataStream& output(const std::string& port, int i = 0) const {
    return *endpoint(outputs_, port, i);
  }
  [[nodiscard]] std::size_t output_width(const std::string& port) const {
    auto it = outputs_.find(port);
    return it == outputs_.end() ? 0 : it->second.size();
  }

 private:
  static DataStream* endpoint(
      const std::map<std::string, std::vector<DataStream*>>& table,
      const std::string& port, int i) {
    auto it = table.find(port);
    if (it == table.end() || i < 0 ||
        static_cast<std::size_t>(i) >= it->second.size()) {
      throw UsageError("filter port not connected: " + port + "[" +
                       std::to_string(i) + "]");
    }
    return it->second[i];
  }

  int copy_index_;
  int copies_;
  std::map<std::string, std::vector<DataStream*>> inputs_;
  std::map<std::string, std::vector<DataStream*>> outputs_;
};

/// Base class for user filters.  run() is called once per instance; the
/// filter must drain its inputs and close nothing — the graph closes
/// output streams when all producer copies return.
class Filter {
 public:
  virtual ~Filter() = default;
  virtual void run(FilterContext& ctx) = 0;
};

/// Declarative filter graph: add filters (with a copy count), connect
/// output ports to input ports, then execute.
class FilterGraph {
 public:
  using Factory = std::function<std::unique_ptr<Filter>()>;

  /// Registers a filter; `copies` transparent copies run concurrently.
  void add_filter(const std::string& name, Factory factory, int copies = 1);

  /// Connects `producer`'s output port to `consumer`'s input port.
  /// Every producer copy gets a dedicated stream to every consumer copy
  /// is *not* the model; instead each producer copy owns one stream per
  /// port and consumer copies share them by index modulo — see
  /// connect() docs in filter.cpp for the exact wiring.
  void connect(const std::string& producer, const std::string& out_port,
               const std::string& consumer, const std::string& in_port,
               std::size_t stream_capacity = 64);

  /// Instantiates all filter copies, wires streams, runs every instance
  /// on its own thread, joins, and propagates the first error.
  void run();

 private:
  struct Node {
    Factory factory;
    int copies = 1;
  };
  struct Connection {
    std::string producer, out_port, consumer, in_port;
    std::size_t capacity;
  };

  std::map<std::string, Node> nodes_;
  std::vector<Connection> connections_;
};

}  // namespace mssg
