// Message envelope for the simulated cluster.  Mirrors the MPI model the
// thesis' prototype used underneath DataCutter: a tagged byte payload
// with a source rank.  The payload is a shared immutable PayloadBuffer,
// so fan-out (broadcast, allgather) enqueues references, not copies.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "runtime/payload.hpp"

namespace mssg {

/// Matches any tag / any source in recv calls.
inline constexpr int kAnyTag = -1;
inline constexpr Rank kAnyRank = -1;

struct Message {
  int tag = 0;
  Rank source = -1;
  PayloadBuffer payload;
};

}  // namespace mssg
