// Message envelope for the simulated cluster.  Mirrors the MPI model the
// thesis' prototype used underneath DataCutter: a tagged byte payload
// with a source rank.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mssg {

/// Matches any tag / any source in recv calls.
inline constexpr int kAnyTag = -1;
inline constexpr Rank kAnyRank = -1;

struct Message {
  int tag = 0;
  Rank source = -1;
  std::vector<std::byte> payload;
};

}  // namespace mssg
