#include "storage/snapshot.hpp"

namespace mssg {

namespace {
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
thread_local SnapshotScope* g_top = nullptr;

SnapshotScope*& top_frame() { return g_top; }
}  // namespace

SnapshotScope::SnapshotScope(SnapshotRef snap)
    : prev_(top_frame()), snap_(std::move(snap)) {
  top_frame() = this;
}

SnapshotScope::~SnapshotScope() { top_frame() = prev_; }

const Snapshot* SnapshotScope::active_for(const void* owner) {
  for (const SnapshotScope* s = top_frame(); s != nullptr; s = s->prev_) {
    if (s->snap_ != nullptr && s->snap_->owner() == owner) {
      return s->snap_.get();
    }
  }
  return nullptr;
}

}  // namespace mssg
