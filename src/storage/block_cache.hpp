// LRU block cache — the thesis' "block cache component" of grDB, also
// reused as the page cache of the KVStore (BerkeleyDB stand-in).
//
// The cache sits above one or more *stores* (registered read/write
// callbacks with a fixed block size).  Callers pin blocks through
// BlockHandle; pinned blocks are never evicted.  Dirty blocks are
// written back on eviction and on flush().  A capacity of zero gives the
// "cache disabled" configuration of Figure 5.2: every access misses and
// every dirty unpin writes through.
//
// Single-threaded by design: each simulated cluster node owns its own
// GraphDB instance and cache.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "storage/io_stats.hpp"

namespace mssg {

class BlockCache;

namespace detail {
struct CacheEntry {
  std::uint64_t key = 0;          // (store << 48) | block
  std::vector<std::byte> data;
  bool dirty = false;
  int pins = 0;
  std::list<std::uint64_t>::iterator lru_pos;  // valid iff resident
  bool resident = false;
  bool orphaned = false;  // cache destroyed while still pinned; the
                          // surviving handle owns (and frees) the entry
};
}  // namespace detail

/// Pins a cached block for the lifetime of the handle.  Writable access
/// marks the block dirty.
class BlockHandle {
 public:
  BlockHandle() = default;
  BlockHandle(const BlockHandle&) = delete;
  BlockHandle& operator=(const BlockHandle&) = delete;
  BlockHandle(BlockHandle&& other) noexcept;
  BlockHandle& operator=(BlockHandle&& other) noexcept;
  ~BlockHandle();

  [[nodiscard]] bool valid() const { return entry_ != nullptr; }

  /// Read-only view of the block contents.
  [[nodiscard]] std::span<const std::byte> data() const {
    MSSG_CHECK(valid());
    return entry_->data;
  }

  /// Mutable view; marks the block dirty.
  [[nodiscard]] std::span<std::byte> mutable_data() {
    MSSG_CHECK(valid());
    entry_->dirty = true;
    return entry_->data;
  }

 private:
  friend class BlockCache;
  BlockHandle(BlockCache* cache, detail::CacheEntry* entry)
      : cache_(cache), entry_(entry) {}

  void release();

  BlockCache* cache_ = nullptr;
  detail::CacheEntry* entry_ = nullptr;
};

class BlockCache {
 public:
  using Reader = std::function<void(std::uint64_t block, std::span<std::byte>)>;
  using Writer =
      std::function<void(std::uint64_t block, std::span<const std::byte>)>;

  /// `capacity_bytes` bounds the total size of unpinned resident blocks;
  /// zero disables caching (write-through / read-through).
  explicit BlockCache(std::size_t capacity_bytes, IoStats* stats = nullptr)
      : capacity_bytes_(capacity_bytes), stats_(stats) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Writes back all dirty blocks.  Entries still pinned here indicate a
  /// leaked BlockHandle: each is logged, counted in
  /// `IoStats::cache_pin_leaks` (debug builds additionally assert), and
  /// handed over to its handle, which frees it on release — so a leaked
  /// handle is detected loudly instead of silently masked.
  ~BlockCache();

  /// Registers a backing store.  Returns the store id used in get().
  std::uint16_t register_store(std::size_t block_size, Reader reader,
                               Writer writer);

  /// Fetches a block, loading it from the store on a miss.
  BlockHandle get(std::uint16_t store, std::uint64_t block);

  /// Writes back all dirty blocks (keeps them resident).
  void flush();

  /// Writes back and drops every unpinned block.
  void drop_clean();

  [[nodiscard]] std::size_t resident_bytes() const { return resident_bytes_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  friend class BlockHandle;

  struct Store {
    std::size_t block_size = 0;
    Reader reader;
    Writer writer;
  };

  static constexpr int kStoreShift = 48;

  void unpin(detail::CacheEntry* entry);
  void write_back(detail::CacheEntry& entry);
  void evict_to_capacity();

  std::size_t capacity_bytes_;
  IoStats* stats_;
  std::vector<Store> stores_;
  std::unordered_map<std::uint64_t, std::unique_ptr<detail::CacheEntry>> map_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::size_t resident_bytes_ = 0;
};

}  // namespace mssg
