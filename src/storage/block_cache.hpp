// Scan-resistant block cache — the thesis' "block cache component" of
// grDB, also reused as the page cache of the KVStore (BerkeleyDB
// stand-in).
//
// The cache sits above one or more *stores* (registered read/write
// callbacks with a fixed block size).  Callers pin blocks through
// BlockHandle; pinned blocks are never evicted.  Dirty blocks are
// written back on eviction and on flush().  A capacity of zero gives the
// "cache disabled" configuration of Figure 5.2: every access misses and
// every dirty unpin writes through.
//
// Replacement is 2Q-style (a simplified ARC/SLRU): a block enters the
// *probation* list on first touch and is promoted to the *protected*
// list only when re-referenced.  Eviction drains probation first, so a
// one-pass scan — a full-graph analysis walking every adjacency chunk
// once — churns through probation without displacing another query's
// re-referenced working set.  The protected list is capped at 3/4 of
// capacity; overflow demotes its LRU tail back to probation, where a
// further cold spell evicts it.
//
// Thread-safe: the concurrent query engine runs several read-only
// analyses against one node's cache at a time.  One internal mutex
// serializes every public operation *including the store callbacks*
// (reader/writer/locator/seal/verify), which is what makes the stores'
// internal metadata (grDB level tables, pager free lists) safe under
// concurrent readers without their own locking.  Handles follow the
// usual rule: a pinned block's bytes may be read by the pinning thread
// freely; mutating handles must not be shared across threads.
//
// Per-query attribution: a query thread installs a CacheAttributionScope
// naming its CacheAttribution; every get() on that thread then also
// bumps the query-scoped hit/miss counters, giving the scheduler
// per-query hit ratios over the *shared* cache.
//
// enable_async_io() attaches a background IoEngine without weakening the
// locking rule — the owning thread resolves each block to a
// (File*, offset) via the store's Locator at submit time, so the worker
// thread only ever performs positional I/O on shared fds:
//
//  - prefetch_async() submits a sorted read batch for blocks the caller
//    will need soon; get() adopts finished buffers (or waits for the
//    in-flight one) instead of re-reading, and never reads a block twice;
//  - eviction hands dirty victims to the engine as write-behind requests,
//    keeping the disk write off the caller's critical path; a get() of a
//    block whose write is still in flight drains first, so readers can
//    never observe stale bytes.
//
// flush() and the destructor drain the engine, so the durability
// contract ("flush persists everything") is unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "storage/io_engine.hpp"
#include "storage/io_stats.hpp"

namespace mssg {

class BlockCache;

namespace detail {
struct CacheEntry {
  std::uint64_t key = 0;          // (store << 48) | block
  std::vector<std::byte> data;
  std::size_t usable = 0;  // bytes exposed through handles (0 = all);
                           // the tail holds the store's checksum trailer
  bool dirty = false;
  int pins = 0;
  std::list<std::uint64_t>::iterator lru_pos;  // valid iff resident
  bool resident = false;
  bool in_protected = false;  // which 2Q list lru_pos points into
  bool hot = false;   // re-referenced: joins the protected list when it
                      // next becomes resident
  bool orphaned = false;  // cache destroyed while still pinned; the
                          // surviving handle owns (and frees) the entry
  bool prefetched = false;  // loaded by async read-ahead and not yet
                            // claimed by a get() (prefetch-hit marker)

  [[nodiscard]] std::size_t usable_size() const {
    return usable == 0 ? data.size() : usable;
  }
};
}  // namespace detail

/// Pins a cached block for the lifetime of the handle.  Writable access
/// marks the block dirty.
class BlockHandle {
 public:
  BlockHandle() = default;
  BlockHandle(const BlockHandle&) = delete;
  BlockHandle& operator=(const BlockHandle&) = delete;
  BlockHandle(BlockHandle&& other) noexcept;
  BlockHandle& operator=(BlockHandle&& other) noexcept;
  ~BlockHandle();

  [[nodiscard]] bool valid() const { return entry_ != nullptr; }

  /// Read-only view of the block contents (the store's usable prefix —
  /// a checksum trailer, when the store has one, stays hidden).
  [[nodiscard]] std::span<const std::byte> data() const {
    MSSG_CHECK(valid());
    return std::span<const std::byte>(entry_->data).first(entry_->usable_size());
  }

  /// Mutable view; marks the block dirty.  Mutating handles are
  /// single-thread only (concurrent queries are read-only).
  [[nodiscard]] std::span<std::byte> mutable_data() {
    MSSG_CHECK(valid());
    entry_->dirty = true;
    return std::span<std::byte>(entry_->data).first(entry_->usable_size());
  }

 private:
  friend class BlockCache;
  BlockHandle(BlockCache* cache, detail::CacheEntry* entry)
      : cache_(cache), entry_(entry) {}

  void release();

  BlockCache* cache_ = nullptr;
  detail::CacheEntry* entry_ = nullptr;
};

/// Where a block lives on disk, for direct positional I/O by the engine
/// worker.  The File must stay open until the cache is flushed/destroyed.
struct AsyncTarget {
  const File* file = nullptr;
  std::uint64_t offset = 0;
};

/// Per-query cache counters.  One instance is shared by all of a query's
/// rank threads (the counters are atomic), installed per thread with a
/// CacheAttributionScope.
struct CacheAttribution {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};

  [[nodiscard]] double hit_ratio() const {
    const std::uint64_t h = hits.load(std::memory_order_relaxed);
    const std::uint64_t m = misses.load(std::memory_order_relaxed);
    return h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }
};

/// RAII: routes this thread's cache hits/misses to `attribution` (may be
/// nullptr to suspend attribution).  Nests; restores the previous scope.
class CacheAttributionScope {
 public:
  explicit CacheAttributionScope(CacheAttribution* attribution);
  CacheAttributionScope(const CacheAttributionScope&) = delete;
  CacheAttributionScope& operator=(const CacheAttributionScope&) = delete;
  ~CacheAttributionScope();

 private:
  CacheAttribution* prev_;
};

class BlockCache {
 public:
  using Reader = std::function<void(std::uint64_t block, std::span<std::byte>)>;
  using Writer =
      std::function<void(std::uint64_t block, std::span<const std::byte>)>;
  /// Resolves a block to its on-disk location — called on the OWNING
  /// thread at submit time, so it may freely mutate store metadata
  /// (create/extend files, set allocation bitmaps).  Returning nullopt
  /// means the block cannot be handled asynchronously (e.g. a grDB block
  /// that was never written reads as 0xFF without touching disk); such
  /// blocks fall back to the synchronous Reader/Writer.
  using Locator = std::function<std::optional<AsyncTarget>(
      std::uint64_t block, bool for_write)>;

  /// `capacity_bytes` bounds the total size of unpinned resident blocks;
  /// zero disables caching (write-through / read-through).
  explicit BlockCache(std::size_t capacity_bytes, IoStats* stats = nullptr)
      : capacity_bytes_(capacity_bytes), stats_(stats) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Writes back all dirty blocks (draining the I/O engine first).
  /// Entries still pinned here indicate a leaked BlockHandle: each is
  /// logged, counted in `IoStats::cache_pin_leaks` (debug builds
  /// additionally assert), and handed over to its handle, which frees it
  /// on release — so a leaked handle is detected loudly instead of
  /// silently masked.
  ~BlockCache();

  /// Registers a backing store.  Returns the store id used in get().
  /// `locator` is optional; stores without one never use the async path.
  std::uint16_t register_store(std::size_t block_size, Reader reader,
                               Writer writer, Locator locator = nullptr);

  /// Simulated device latency per synchronous miss (microseconds,
  /// 0 = off) — see GraphDBConfig::sim_miss_penalty_us.  Slept with the
  /// internal mutex RELEASED, so concurrent queries overlap their
  /// stalls.  Set before concurrent use (not synchronized).
  void set_miss_penalty_us(std::uint32_t us) { miss_penalty_us_ = us; }

  /// Optional per-store integrity hooks.  `seal` runs on the full
  /// physical block right before any disk write (sync write-back and
  /// async write-behind alike); `verify` runs right after any disk read
  /// — it may throw, or repair the block in place (self-healing stores
  /// like the visited structure reset a corrupt page instead of dying).
  /// `usable_bytes` (0 = whole block) caps what BlockHandle exposes, so
  /// a trailing checksum region never leaks into store payloads.
  struct StoreHooks {
    std::function<void(std::uint64_t block, std::span<std::byte>)> seal;
    std::function<void(std::uint64_t block, std::span<std::byte>)> verify;
    std::size_t usable_bytes = 0;
    /// Durability barrier for write-behind: called once per eviction
    /// batch, after the store's Locators resolved every victim (and
    /// captured their undo pre-images) but BEFORE the payloads reach the
    /// engine.  Journaled stores fdatasync their undo log here, so a
    /// whole batch amortizes one sync instead of paying one per block.
    std::function<void()> write_barrier;
  };

  void set_store_hooks(std::uint16_t store, StoreHooks hooks);

  /// Starts the background I/O engine with `workers` lanes (idempotent;
  /// the first call wins).  No-op when the cache is disabled (capacity
  /// 0): with nothing retained between unpins there is nothing to
  /// prefetch into or write behind from.
  void enable_async_io(std::size_t workers = 1);

  [[nodiscard]] bool async_enabled() const { return engine_ != nullptr; }

  /// Submits one sorted read batch for every listed block not already
  /// cached or in flight.  Returns the number of requests issued.
  /// Requires async I/O enabled and a Locator on the store.
  std::size_t prefetch_async(std::uint16_t store,
                             std::span<const std::uint64_t> blocks);

  /// Adopts finished async requests into the cache (non-blocking).
  /// Called automatically by get()/flush(); exposed for overlap loops
  /// that want to fold in completions while waiting on something else.
  void poll_async();

  /// Fetches a block, loading it from the store on a miss.
  BlockHandle get(std::uint16_t store, std::uint64_t block);

  /// Like get(), but for a block the caller is about to fully
  /// initialize: the entry is zero-filled and marked dirty WITHOUT
  /// consulting the store's reader.  Fresh-extent pages must come
  /// through here — reading them could surface a previous crash's torn
  /// garbage (or trip `verify`) for bytes nobody ever committed.
  BlockHandle create(std::uint16_t store, std::uint64_t block);

  /// Visits every dirty resident block in ascending key order with its
  /// FULL physical span (trailer included) — what a journal records as
  /// redo images.  Call drain_pending() first if async write-behind may
  /// be in flight (in-flight payloads are not resident).
  void for_each_dirty(
      const std::function<void(std::uint16_t store, std::uint64_t block,
                               std::span<std::byte> data)>& fn);

  /// Drains the async engine (if any) and rethrows the first deferred
  /// write-behind error as StorageError.
  void drain_pending();

  /// Writes back all dirty blocks (keeps them resident).
  void flush();

  /// Writes back and drops every unpinned block.
  void drop_clean();

  /// Current pin count of a block (0 when not cached) — lets stores
  /// refuse operations on in-use blocks (e.g. Pager::free_page).
  [[nodiscard]] int pin_count(std::uint16_t store, std::uint64_t block) const;

  /// Drains the engine and snapshots its internal metrics
  /// (span.io.engine.batch, io.engine.queue_depth, ...) without
  /// resetting them.  Empty snapshot when async I/O is off.
  [[nodiscard]] MetricsSnapshot async_metrics() const;

  [[nodiscard]] std::size_t resident_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resident_bytes_;
  }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }
  /// Bytes currently on the protected (re-referenced) list.
  [[nodiscard]] std::size_t protected_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return protected_bytes_;
  }

  /// The attribution sink installed on this thread (nullptr when none).
  [[nodiscard]] static CacheAttribution* current_attribution();

 private:
  friend class BlockHandle;
  friend class CacheAttributionScope;

  struct Store {
    std::size_t block_size = 0;
    Reader reader;
    Writer writer;
    Locator locator;
    StoreHooks hooks;
  };

  static constexpr int kStoreShift = 48;

  void unpin(detail::CacheEntry* entry);
  void write_back(detail::CacheEntry& entry);
  void evict_to_capacity();
  /// Blocks until no async request is queued, running, or unadopted.
  void drain_async();
  void poll_async_locked();
  /// Inserts an adopted/unpinned entry at the front of its 2Q list
  /// (protected when re-referenced, probation otherwise).
  void make_resident(detail::CacheEntry& entry);
  /// Removes a resident entry from its 2Q list.
  void unlink(detail::CacheEntry& entry);
  /// Demotes the protected tail to probation until protected fits its
  /// share of capacity.
  void rebalance_protected();
  /// Throws StorageError if an async write-behind failed earlier.
  void maybe_rethrow();
  void flush_locked();
  [[nodiscard]] std::size_t usable_of(std::uint16_t store) const {
    const Store& s = stores_[store];
    return s.hooks.usable_bytes != 0 ? s.hooks.usable_bytes : s.block_size;
  }
  [[nodiscard]] std::size_t protected_capacity() const {
    return capacity_bytes_ - capacity_bytes_ / 4;  // 3/4 of capacity
  }

  std::size_t capacity_bytes_;
  IoStats* stats_;
  std::uint32_t miss_penalty_us_ = 0;
  mutable std::mutex mu_;
  std::vector<Store> stores_;
  std::unordered_map<std::uint64_t, std::unique_ptr<detail::CacheEntry>> map_;
  // 2Q lists, front = most recently used.  An unpinned resident entry
  // lives on exactly one of them (entry.in_protected says which).
  std::list<std::uint64_t> probation_;
  std::list<std::uint64_t> protected_;
  std::size_t resident_bytes_ = 0;
  std::size_t probation_bytes_ = 0;
  std::size_t protected_bytes_ = 0;
  std::unique_ptr<IoEngine> engine_;
  std::unordered_set<std::uint64_t> pending_reads_;
  // key -> in-flight write-behind count (re-eviction can stack writes).
  std::unordered_map<std::uint64_t, std::uint32_t> pending_writes_;
  // First error from an async write-behind (the worker cannot throw into
  // this thread) or from a write during handle release (a destructor
  // cannot throw at all); rethrown by get()/flush()/drain_pending().
  std::string deferred_error_;
};

}  // namespace mssg
