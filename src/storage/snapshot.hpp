// Epoch-based snapshot isolation primitives (DESIGN.md "Snapshot
// isolation").
//
// An *epoch* is the unit of visibility: every committed flush advances
// the store's epoch by one, and everything written since the previous
// commit becomes visible atomically at that boundary.  A `Snapshot` pins
// one committed epoch; readers holding it see exactly that epoch's state
// no matter how far ingest has advanced since.  The machinery is
// deliberately backend-agnostic:
//
//   EpochManager   the committed-epoch counter plus the set of live
//                  (pinned) epochs.  `current()` is the last committed
//                  epoch; `open()` (= current+1) tags mutations made
//                  since.  `advance()` runs at commit.
//   VersionStore   copy-on-write pre-images.  On the FIRST mutation of a
//                  key in an epoch the writer captures the key's current
//                  payload tagged with the open epoch — the same
//                  discipline (and often the same bytes) as the
//                  journal's undo pre-images, kept in memory and shared
//                  out to snapshot readers.  A version captured at epoch
//                  E holds the state as of commit E-1, so snapshot S is
//                  served by the version with the SMALLEST capture epoch
//                  > S; when none exists the live bytes are already
//                  valid for S.  `purge(min_live)` drops versions no
//                  live snapshot can need, bounding memory to roughly
//                  one epoch of mutations once readers drain.
//   SnapshotScope  thread-local plumbing: installs a snapshot for the
//                  duration of a query so deep read paths
//                  (pin_subblock, for_each_vertex, chunk walks) can ask
//                  "am I under a snapshot of THIS store?" without
//                  threading a handle through every signature.  Keyed by
//                  an owner pointer so nested scopes over different
//                  backends coexist.
//
// Capture happens UNCONDITIONALLY while snapshots are enabled — not just
// while one is pinned — because a snapshot may pin mid-epoch, after
// mutations already landed.  The cost is bounded by purge: with no
// readers, min_live == current() and every version from closed epochs
// drops immediately.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mssg {

/// Monotonic commit counter.  Epoch 0 is the empty store; the first
/// committed flush advances to 1.
using Epoch = std::uint64_t;

class EpochManager;

/// A pinned, consistent view of one backend at one committed epoch.
/// Obtained from `GraphDB::begin_snapshot()`; release (destruction)
/// unpins the epoch and lets its versions retire.  `owner` identifies
/// the backend instance the snapshot belongs to (SnapshotScope matches
/// on it); `extent`/`nonempty` freeze whatever per-backend high-water
/// mark the read path needs (max vertex bound, committed log length) so
/// scans never chase state written after the pin.
class Snapshot {
 public:
  Snapshot(EpochManager* mgr, Epoch epoch, const void* owner,
           std::uint64_t extent, bool nonempty)
      : mgr_(mgr), epoch_(epoch), owner_(owner), extent_(extent),
        nonempty_(nonempty) {}
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot();

  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] const void* owner() const { return owner_; }
  [[nodiscard]] std::uint64_t extent() const { return extent_; }
  [[nodiscard]] bool nonempty() const { return nonempty_; }

 private:
  EpochManager* mgr_;
  Epoch epoch_;
  const void* owner_;
  std::uint64_t extent_;
  bool nonempty_;
};

using SnapshotRef = std::shared_ptr<const Snapshot>;

/// The committed-epoch counter and the live-snapshot ledger.  All ops
/// take one short mutex; none are on a per-read hot path (reads consult
/// the Snapshot handle, not the manager).
class EpochManager {
 public:
  /// Last committed epoch.
  [[nodiscard]] Epoch current() const {
    std::lock_guard lk(mu_);
    return current_;
  }

  /// The epoch in-flight mutations belong to (= current()+1): they
  /// become visible when the next commit advances to it.
  [[nodiscard]] Epoch open() const {
    std::lock_guard lk(mu_);
    return current_ + 1;
  }

  /// Pins the current committed epoch and returns the handle.  The
  /// caller owns `owner`/`extent`/`nonempty` semantics (see Snapshot).
  SnapshotRef pin(const void* owner, std::uint64_t extent, bool nonempty) {
    std::lock_guard lk(mu_);
    ++live_[current_];
    return std::make_shared<Snapshot>(this, current_, owner, extent, nonempty);
  }

  /// Commit boundary: everything written in the open epoch becomes the
  /// new current.  Returns the new committed epoch.
  Epoch advance() {
    std::lock_guard lk(mu_);
    return ++current_;
  }

  /// Restores the committed epoch after recovery re-opens a store (the
  /// counter is in-memory state; reopen continuity is per-process).
  void reset(Epoch committed) {
    std::lock_guard lk(mu_);
    MSSG_CHECK(live_.empty());
    current_ = committed;
  }

  /// The oldest epoch any live snapshot pins — or current() when none
  /// is live.  Versions captured at epochs <= min_live() serve no one.
  [[nodiscard]] Epoch min_live() const {
    std::lock_guard lk(mu_);
    return live_.empty() ? current_ : live_.begin()->first;
  }

  /// Live pinned snapshots (the `txn.epochs_live` gauge counts distinct
  /// epochs, not handles).
  [[nodiscard]] std::uint64_t live_count() const {
    std::lock_guard lk(mu_);
    return live_.size();
  }

  /// Hook invoked — under the manager's mutex, with the new min_live —
  /// whenever releasing a snapshot fully retires an epoch.  Backends
  /// purge their VersionStore here so dropping the last reader frees
  /// retired versions promptly rather than waiting for the next commit.
  /// The hook must not call back into this EpochManager.
  void set_retire_hook(std::function<void(Epoch)> hook) {
    std::lock_guard lk(mu_);
    retire_hook_ = std::move(hook);
  }

 private:
  friend class Snapshot;
  void unpin(Epoch e) {
    std::lock_guard lk(mu_);
    auto it = live_.find(e);
    MSSG_CHECK(it != live_.end());
    if (--it->second == 0) {
      live_.erase(it);
      if (retire_hook_) {
        retire_hook_(live_.empty() ? current_ : live_.begin()->first);
      }
    }
  }

  mutable std::mutex mu_;
  Epoch current_ = 0;
  std::map<Epoch, std::uint64_t> live_;  ///< pinned epoch -> handle count
  std::function<void(Epoch)> retire_hook_;
};

inline Snapshot::~Snapshot() {
  if (mgr_ != nullptr) mgr_->unpin(epoch_);
}

/// Copy-on-write version shelf, templated on the payload a backend
/// versions: grDB captures whole blocks (`std::vector<std::byte>`), the
/// vertex-granularity backends capture one adjacency list
/// (`std::vector<VertexId>`).  Payloads are handed out as
/// shared_ptr<const Payload> so a reader's bytes stay alive and
/// immutable regardless of purge timing.
template <typename Payload>
class VersionStore {
 public:
  using Ptr = std::shared_ptr<const Payload>;

  /// Captures a pre-image for `key` at `open_epoch` if none exists yet
  /// (first mutation of the epoch wins; later mutations are already
  /// covered).  `make` materializes the payload only when the capture
  /// actually happens.  Returns true when a new version was shelved.
  template <typename MakeFn>
  bool capture(std::uint64_t key, Epoch open_epoch, MakeFn&& make) {
    {
      std::lock_guard lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end() && !it->second.empty() &&
          it->second.back().capture_epoch == open_epoch) {
        return false;
      }
    }
    // Materialize outside the lock: make() may read through the block
    // cache (its own mutex) and must not nest under ours.
    Ptr payload = std::make_shared<const Payload>(make());
    std::lock_guard lk(mu_);
    auto& chain = map_[key];
    if (!chain.empty() && chain.back().capture_epoch == open_epoch) {
      return false;  // racing writer captured first — theirs is older, keep it
    }
    MSSG_CHECK(chain.empty() || chain.back().capture_epoch < open_epoch);
    chain.push_back(Version{open_epoch, std::move(payload)});
    ++count_;
    return true;
  }

  /// The payload snapshot `snapshot_epoch` must read for `key`, or
  /// nullptr when the live bytes are already valid for it (no version
  /// captured after the snapshot pinned).
  [[nodiscard]] Ptr lookup(std::uint64_t key, Epoch snapshot_epoch) const {
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    // Chains are short (one version per epoch still live) and sorted by
    // capture epoch: scan for the first strictly newer than the pin.
    for (const Version& v : it->second) {
      if (v.capture_epoch > snapshot_epoch) return v.payload;
    }
    return nullptr;
  }

  /// Snapshot read with the race against a first mutation closed.  If a
  /// version serves `snapshot_epoch`, returns it; otherwise materializes
  /// `live()` (a copy of the current bytes) UNDER the store's mutex and
  /// returns that.  Why the lock matters: a writer's first mutation of a
  /// key in an epoch inserts its pre-image here (capture) BEFORE
  /// touching the live bytes, and that insert needs this same mutex — so
  /// while `live()` runs, no first mutation of the epoch can begin, and
  /// any earlier epoch's writes are already ordered before the reader's
  /// pin (commit advances under the EpochManager mutex the pin also
  /// takes).  `live()` must not touch this VersionStore.
  template <typename LiveFn>
  [[nodiscard]] Ptr read(std::uint64_t key, Epoch snapshot_epoch,
                         LiveFn&& live) const {
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      for (const Version& v : it->second) {
        if (v.capture_epoch > snapshot_epoch) return v.payload;
      }
    }
    return std::make_shared<const Payload>(live());
  }

  /// Drops every version no live snapshot can need: capture epoch
  /// <= min_live (a version at E serves only snapshots pinned before
  /// E, i.e. at epochs < E).
  void purge(Epoch min_live) {
    std::lock_guard lk(mu_);
    for (auto it = map_.begin(); it != map_.end();) {
      auto& chain = it->second;
      std::size_t drop = 0;
      while (drop < chain.size() && chain[drop].capture_epoch <= min_live) {
        ++drop;
      }
      if (drop > 0) {
        chain.erase(chain.begin(),
                    chain.begin() + static_cast<std::ptrdiff_t>(drop));
        count_ -= drop;
      }
      it = chain.empty() ? map_.erase(it) : std::next(it);
    }
  }

  /// Versions currently shelved (the `txn.cow_pages` gauge).
  [[nodiscard]] std::uint64_t versions() const {
    std::lock_guard lk(mu_);
    return count_;
  }

  void clear() {
    std::lock_guard lk(mu_);
    map_.clear();
    count_ = 0;
  }

 private:
  struct Version {
    Epoch capture_epoch;  ///< open epoch at capture; holds state of E-1
    Ptr payload;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Version>> map_;
  std::uint64_t count_ = 0;
};

/// Thread-local snapshot installation, in the idiom of
/// SequentialScanScope / CacheAttributionScope: a query runner installs
/// the snapshot it pinned, and every read the thread makes through that
/// backend serves the pinned epoch.  Scopes nest (innermost wins per
/// owner) so a query over one backend can call helpers that pin another.
class SnapshotScope {
 public:
  explicit SnapshotScope(SnapshotRef snap);
  SnapshotScope(const SnapshotScope&) = delete;
  SnapshotScope& operator=(const SnapshotScope&) = delete;
  ~SnapshotScope();

  /// The innermost snapshot installed on this thread whose owner is
  /// `owner`, or nullptr when the thread reads live state.
  [[nodiscard]] static const Snapshot* active_for(const void* owner);

 private:
  SnapshotScope* prev_;
  SnapshotRef snap_;  ///< may be null (scope is then a no-op frame)
};

/// The vertex-granularity snapshot kit shared by the backends that
/// version whole adjacency lists (HashMap/Array staging, KVStore,
/// Relational): one epoch counter plus one VersionStore keyed by vertex.
struct VertexSnapshots {
  EpochManager epochs;
  VersionStore<std::vector<VertexId>> versions;

  VertexSnapshots() {
    epochs.set_retire_hook(
        [this](Epoch min_live) { versions.purge(min_live); });
  }

  /// Commit boundary: advance, then retire versions nobody can read.
  void advance_and_purge() {
    epochs.advance();
    versions.purge(epochs.min_live());
  }
};

}  // namespace mssg
