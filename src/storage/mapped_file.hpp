// Zero-copy read path for sealed block files.
//
// The pread+BlockCache pipeline copies every block into a cache frame
// before the compute loop can touch a byte.  For *sealed* data — block
// files that no open journal epoch or in-flight mutation can rewrite —
// that copy buys nothing: the OS page cache already holds the bytes, and
// a read-only MAP_SHARED mapping lets scans consume them in place.
//
//  - MappedFile: RAII mmap of one file (PROT_READ, MAP_SHARED).  The fd
//    stays open for madvise()/mincore(), so the mapping can be advised
//    (SEQUENTIAL for level sweeps, WILLNEED as the mapped analogue of
//    IoEngine prefetch) and its page-cache residency sampled.
//  - MappedBlockSource: a fixed-block-size view over one store's file
//    sequence, with lazy sidecar-checksum verification: the first access
//    to each mapped block runs the store's verifier and records success
//    in a per-file atomic bitmap, so checksums are paid once per block,
//    not once per access (the pread path pays them once per disk read —
//    same guarantee, different amortization point).
//  - SequentialScanScope: a thread-local RAII marker (the shape of
//    CacheAttributionScope) that scan loops install so the storage layer
//    can route their reads to the mapped path while point probes on
//    other threads keep the scan-resistant 2Q cache.
//
// Thread safety: a MappedBlockSource is immutable after construction;
// concurrent readers only race on the verified bitmap, which is a benign
// atomic fetch_or (two threads may both verify a block once — the bit is
// set only after the verifier passes).  Unmapping while readers hold
// spans is the caller's problem; grDB relies on the scheduler contract
// that mutations (the only unmap triggers) run exclusively.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/io_stats.hpp"

namespace mssg {

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  /// Maps an existing file read-only; throws StorageError if it cannot
  /// be opened or mapped.  An empty file yields a valid, empty mapping.
  static MappedFile map_readonly(const std::filesystem::path& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(base_), size_};
  }
  [[nodiscard]] const std::string& path() const { return path_; }

  enum class Advice { kNormal, kSequential, kWillNeed, kDontNeed };

  /// Best-effort madvise over the whole mapping.
  void advise(Advice advice) const;
  /// Best-effort madvise over a byte range (page-aligned internally).
  void advise(std::uint64_t offset, std::uint64_t length,
              Advice advice) const;

  struct Residency {
    std::uint64_t resident_pages = 0;
    std::uint64_t sampled_pages = 0;

    Residency& operator+=(const Residency& o) {
      resident_pages += o.resident_pages;
      sampled_pages += o.sampled_pages;
      return *this;
    }
  };

  /// Samples up to `max_pages` evenly spaced pages with mincore() and
  /// reports how many are resident in the OS page cache.  Best-effort:
  /// platforms without mincore report zero sampled pages.
  [[nodiscard]] Residency residency(std::size_t max_pages = 512) const;

 private:
  MappedFile(int fd, void* base, std::uint64_t size, std::string path)
      : fd_(fd), base_(base), size_(size), path_(std::move(path)) {}

  void reset();

  int fd_ = -1;
  void* base_ = nullptr;
  std::uint64_t size_ = 0;
  std::string path_;
};

/// Fixed-block zero-copy view over a store's file sequence
/// (file_index = block / blocks_per_file), with once-per-block lazy
/// checksum verification.
class MappedBlockSource {
 public:
  /// `verifier` runs on the first access to each block and must throw on
  /// a checksum mismatch (same classification as the pread-path verify
  /// hook); passing blocks are remembered and never re-verified.  May be
  /// null (no verification).  `stats`, when set, counts the lazy
  /// verifies; the pointer must outlive this source.
  using Verifier =
      std::function<void(std::uint64_t block, std::span<const std::byte>)>;

  MappedBlockSource(std::uint64_t block_bytes, std::uint64_t blocks_per_file,
                    Verifier verifier, IoStats* stats = nullptr);

  /// Attaches the mapping serving blocks
  /// [file_index * blocks_per_file, (file_index + 1) * blocks_per_file).
  void attach(std::uint64_t file_index, MappedFile file);

  /// Zero-copy view of one block, verified (lazily, once).  Empty when
  /// the block's byte range is not backed by an attached mapping — the
  /// caller falls back to its pread path, which synthesizes or
  /// zero-fills exactly as before.  Throws StorageError on a checksum
  /// mismatch.
  [[nodiscard]] std::span<const std::byte> block(std::uint64_t index) const;

  /// madvise(WILLNEED) for the listed blocks — the mapped analogue of
  /// BlockCache::prefetch_async.  Unbacked blocks are ignored.
  void willneed(std::span<const std::uint64_t> blocks) const;

  /// madvise(SEQUENTIAL) over every attached mapping (level sweeps).
  void advise_sequential() const;

  [[nodiscard]] std::uint64_t mapped_bytes() const;
  [[nodiscard]] std::uint64_t files_mapped() const;
  [[nodiscard]] MappedFile::Residency residency() const;

 private:
  struct Slot {
    MappedFile file;
    /// One bit per block of this file, set once its checksum passed.
    std::unique_ptr<std::atomic<std::uint64_t>[]> verified;
  };

  std::uint64_t block_bytes_;
  std::uint64_t blocks_per_file_;
  Verifier verifier_;
  IoStats* stats_;
  std::vector<Slot> slots_;
};

/// RAII marker: reads issued by this thread belong to a sequential scan
/// (a full-graph analytics sweep, an MS-BFS level expansion).  Storage
/// backends route scan reads to the zero-copy mapped path when one is
/// active; point probes — no scope installed — keep the 2Q cache.
/// Nests.
class SequentialScanScope {
 public:
  SequentialScanScope() { ++depth(); }
  SequentialScanScope(const SequentialScanScope&) = delete;
  SequentialScanScope& operator=(const SequentialScanScope&) = delete;
  ~SequentialScanScope() { --depth(); }

  [[nodiscard]] static bool active() { return depth() > 0; }

 private:
  static int& depth() {
    thread_local int tl_depth = 0;
    return tl_depth;
  }
};

}  // namespace mssg
