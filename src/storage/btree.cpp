#include "storage/btree.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace mssg {

namespace {

enum PageType : std::uint8_t { kLeaf = 1, kInternal = 2, kOverflow = 3 };

constexpr std::size_t kLeafHeader = 16;
constexpr std::size_t kLeafSlotSize = 16;
constexpr std::size_t kInternalHeader = 16;  // 8 header + child0
constexpr std::size_t kInternalEntrySize = 20;
constexpr std::size_t kOverflowHeader = 16;
constexpr std::uint16_t kOverflowCellLen = 0xFFFF;
constexpr std::size_t kOverflowCellSize = 16;

template <typename T>
T load(std::span<const std::byte> page, std::size_t off) {
  T v;
  std::memcpy(&v, page.data() + off, sizeof(T));
  return v;
}

template <typename T>
void store(std::span<std::byte> page, std::size_t off, T v) {
  std::memcpy(page.data() + off, &v, sizeof(T));
}

// ---- Leaf accessors ------------------------------------------------------

std::uint16_t leaf_count(std::span<const std::byte> p) {
  return load<std::uint16_t>(p, 2);
}
void set_leaf_count(std::span<std::byte> p, std::uint16_t n) {
  store<std::uint16_t>(p, 2, n);
}
std::uint16_t leaf_heap_start(std::span<const std::byte> p) {
  return load<std::uint16_t>(p, 4);
}
void set_leaf_heap_start(std::span<std::byte> p, std::uint16_t off) {
  store<std::uint16_t>(p, 4, off);
}
PageId leaf_next(std::span<const std::byte> p) { return load<PageId>(p, 8); }
void set_leaf_next(std::span<std::byte> p, PageId next) {
  store<PageId>(p, 8, next);
}

struct LeafSlot {
  BTreeKey key;
  std::uint16_t cell_off;
  std::uint16_t cell_len;
};

LeafSlot leaf_slot(std::span<const std::byte> p, std::size_t i) {
  const std::size_t base = kLeafHeader + i * kLeafSlotSize;
  LeafSlot s;
  s.key.primary = load<std::uint64_t>(p, base);
  s.key.secondary = load<std::uint32_t>(p, base + 8);
  s.cell_off = load<std::uint16_t>(p, base + 12);
  s.cell_len = load<std::uint16_t>(p, base + 14);
  return s;
}

void set_leaf_slot(std::span<std::byte> p, std::size_t i, const LeafSlot& s) {
  const std::size_t base = kLeafHeader + i * kLeafSlotSize;
  store<std::uint64_t>(p, base, s.key.primary);
  store<std::uint32_t>(p, base + 8, s.key.secondary);
  store<std::uint16_t>(p, base + 12, s.cell_off);
  store<std::uint16_t>(p, base + 14, s.cell_len);
}

void init_leaf(std::span<std::byte> p) {
  std::memset(p.data(), 0, p.size());
  store<std::uint8_t>(p, 0, kLeaf);
  set_leaf_count(p, 0);
  set_leaf_heap_start(p, static_cast<std::uint16_t>(p.size()));
  set_leaf_next(p, kInvalidPage);
}

/// Index of the first slot with key >= `key`.
std::size_t leaf_lower_bound(std::span<const std::byte> p,
                             const BTreeKey& key) {
  std::size_t lo = 0, hi = leaf_count(p);
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (leaf_slot(p, mid).key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t leaf_free_space(std::span<const std::byte> p) {
  return leaf_heap_start(p) -
         (kLeafHeader + leaf_count(p) * kLeafSlotSize);
}

/// Bytes of heap actually referenced by live slots.
std::size_t leaf_live_heap(std::span<const std::byte> p) {
  std::size_t total = 0;
  const std::size_t n = leaf_count(p);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = leaf_slot(p, i);
    total += (s.cell_len == kOverflowCellLen) ? kOverflowCellSize : s.cell_len;
  }
  return total;
}

/// Rewrites the heap so that it contains only live cells, maximizing
/// contiguous free space.  Needed after deletions/replacements leave
/// garbage between cells.
void leaf_compact(std::span<std::byte> p) {
  const std::size_t n = leaf_count(p);
  std::vector<std::byte> scratch(p.size());
  std::size_t heap = p.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto s = leaf_slot(p, i);
    const std::size_t len =
        (s.cell_len == kOverflowCellLen) ? kOverflowCellSize : s.cell_len;
    heap -= len;
    std::memcpy(scratch.data() + heap, p.data() + s.cell_off, len);
    s.cell_off = static_cast<std::uint16_t>(heap);
    set_leaf_slot(p, i, s);
  }
  std::memcpy(p.data() + heap, scratch.data() + heap, p.size() - heap);
  set_leaf_heap_start(p, static_cast<std::uint16_t>(heap));
}

/// Writes a heap cell (assumes space is available) and returns its offset.
std::uint16_t leaf_write_cell(std::span<std::byte> p,
                              std::span<const std::byte> cell) {
  const std::size_t heap = leaf_heap_start(p) - cell.size();
  if (!cell.empty()) std::memcpy(p.data() + heap, cell.data(), cell.size());
  set_leaf_heap_start(p, static_cast<std::uint16_t>(heap));
  return static_cast<std::uint16_t>(heap);
}

void leaf_remove_slot(std::span<std::byte> p, std::size_t i) {
  const std::size_t n = leaf_count(p);
  for (std::size_t j = i; j + 1 < n; ++j) {
    set_leaf_slot(p, j, leaf_slot(p, j + 1));
  }
  set_leaf_count(p, static_cast<std::uint16_t>(n - 1));
}

void leaf_insert_slot(std::span<std::byte> p, std::size_t i,
                      const LeafSlot& slot) {
  const std::size_t n = leaf_count(p);
  for (std::size_t j = n; j > i; --j) {
    set_leaf_slot(p, j, leaf_slot(p, j - 1));
  }
  set_leaf_slot(p, i, slot);
  set_leaf_count(p, static_cast<std::uint16_t>(n + 1));
}

// ---- Internal accessors --------------------------------------------------

std::uint16_t internal_count(std::span<const std::byte> p) {
  return load<std::uint16_t>(p, 2);
}
void set_internal_count(std::span<std::byte> p, std::uint16_t n) {
  store<std::uint16_t>(p, 2, n);
}
PageId internal_child0(std::span<const std::byte> p) {
  return load<PageId>(p, 8);
}
void set_internal_child0(std::span<std::byte> p, PageId child) {
  store<PageId>(p, 8, child);
}

struct InternalEntry {
  BTreeKey key;
  PageId child;
};

InternalEntry internal_entry(std::span<const std::byte> p, std::size_t i) {
  const std::size_t base = kInternalHeader + i * kInternalEntrySize;
  InternalEntry e;
  e.key.primary = load<std::uint64_t>(p, base);
  e.key.secondary = load<std::uint32_t>(p, base + 8);
  e.child = load<PageId>(p, base + 12);
  return e;
}

void set_internal_entry(std::span<std::byte> p, std::size_t i,
                        const InternalEntry& e) {
  const std::size_t base = kInternalHeader + i * kInternalEntrySize;
  store<std::uint64_t>(p, base, e.key.primary);
  store<std::uint32_t>(p, base + 8, e.key.secondary);
  store<PageId>(p, base + 12, e.child);
}

void init_internal(std::span<std::byte> p, PageId child0) {
  std::memset(p.data(), 0, p.size());
  store<std::uint8_t>(p, 0, kInternal);
  set_internal_count(p, 0);
  set_internal_child0(p, child0);
}

std::size_t internal_capacity(std::size_t page_size) {
  // One slot is held back so a split can stage count+1 entries in place
  // without running past the page end.
  return (page_size - kInternalHeader) / kInternalEntrySize - 1;
}

/// Child index to descend into for `key`: number of separators <= key.
std::size_t internal_descend_index(std::span<const std::byte> p,
                                   const BTreeKey& key) {
  std::size_t lo = 0, hi = internal_count(p);
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (internal_entry(p, mid).key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId internal_child(std::span<const std::byte> p, std::size_t i) {
  return i == 0 ? internal_child0(p) : internal_entry(p, i - 1).child;
}

std::uint8_t page_type(std::span<const std::byte> p) {
  return load<std::uint8_t>(p, 0);
}

}  // namespace

// ---- BTree ---------------------------------------------------------------

BTree::BTree(Pager& pager, int meta_base)
    : pager_(pager), meta_base_(meta_base) {
  MSSG_CHECK(meta_base >= 0 && meta_base + 1 < Pager::kMetaSlots);
}

std::size_t BTree::inline_max() const {
  // A leaf must hold at least 4 maximal entries so splits always succeed.
  return std::min<std::size_t>(
      1024, (pager_.page_size() - kLeafHeader) / 4 - kLeafSlotSize);
}

void BTree::bump_size(std::int64_t delta) {
  pager_.set_meta(meta_base_ + 1,
                  pager_.meta(meta_base_ + 1) + static_cast<std::uint64_t>(delta));
}

std::uint64_t BTree::size() const { return pager_.meta(meta_base_ + 1); }

int BTree::height() const {
  PageId page = root();
  if (page == kInvalidPage) return 0;
  int h = 1;
  while (true) {
    auto handle = pager_.pin(page);
    if (page_type(handle.data()) == kLeaf) return h;
    page = internal_child0(handle.data());
    ++h;
  }
}

PageId BTree::leaf_page(const BTreeKey& key) const {
  const int h = height();
  if (h == 0) return kInvalidPage;
  PageId page = root();
  for (int level = 1; level < h; ++level) {
    auto handle = pager_.pin(page);
    auto data = handle.data();
    if (page_type(data) != kInternal) {
      throw StorageError("btree: corrupt page type on descent (page " +
                         std::to_string(page) + ")");
    }
    page = internal_child(data, internal_descend_index(data, key));
  }
  return page;
}

PageId BTree::find_leaf(const BTreeKey& key) const {
  PageId page = root();
  MSSG_CHECK(page != kInvalidPage);
  while (true) {
    auto handle = pager_.pin(page);
    auto data = handle.data();
    const auto type = page_type(data);
    if (type == kLeaf) return page;
    if (type != kInternal) {
      throw StorageError("btree: corrupt page type " + std::to_string(type) +
                         " on descent (page " + std::to_string(page) + ")");
    }
    page = internal_child(data, internal_descend_index(data, key));
  }
}

// ---- Overflow chains -----------------------------------------------------

PageId BTree::write_overflow(std::span<const std::byte> value) {
  const std::size_t capacity = pager_.page_size() - kOverflowHeader;
  PageId head = kInvalidPage;
  PageId prev = kInvalidPage;
  std::size_t pos = 0;
  while (pos < value.size() || head == kInvalidPage) {
    const PageId page = pager_.allocate();
    if (head == kInvalidPage) head = page;
    if (prev != kInvalidPage) {
      auto prev_handle = pager_.pin(prev);
      store<PageId>(prev_handle.mutable_data(), 8, page);
    }
    const std::size_t n = std::min(capacity, value.size() - pos);
    auto handle = pager_.pin(page);
    auto data = handle.mutable_data();
    store<std::uint8_t>(data, 0, kOverflow);
    store<std::uint32_t>(data, 4, static_cast<std::uint32_t>(n));
    store<PageId>(data, 8, kInvalidPage);
    std::memcpy(data.data() + kOverflowHeader, value.data() + pos, n);
    pos += n;
    prev = page;
    if (pos >= value.size()) break;
  }
  return head;
}

void BTree::free_overflow(PageId head) {
  while (head != kInvalidPage) {
    PageId next;
    {
      auto handle = pager_.pin(head);
      next = load<PageId>(handle.data(), 8);
    }
    pager_.free_page(head);
    head = next;
  }
}

std::vector<std::byte> BTree::read_overflow(PageId head,
                                            std::uint64_t len) const {
  std::vector<std::byte> value(len);
  std::size_t pos = 0;
  PageId page = head;
  while (pos < len) {
    MSSG_CHECK(page != kInvalidPage);
    auto handle = pager_.pin(page);
    auto data = handle.data();
    if (page_type(data) != kOverflow) {
      throw StorageError("btree: overflow chain points at non-overflow page");
    }
    const auto used = load<std::uint32_t>(data, 4);
    MSSG_CHECK(pos + used <= len);
    std::memcpy(value.data() + pos, data.data() + kOverflowHeader, used);
    pos += used;
    page = load<PageId>(data, 8);
  }
  return value;
}

// ---- Lookup --------------------------------------------------------------

std::optional<std::vector<std::byte>> BTree::get(const BTreeKey& key) const {
  if (root() == kInvalidPage) return std::nullopt;
  const PageId leaf = find_leaf(key);
  auto handle = pager_.pin(leaf);
  auto data = handle.data();
  const std::size_t i = leaf_lower_bound(data, key);
  if (i >= leaf_count(data)) return std::nullopt;
  const auto slot = leaf_slot(data, i);
  if (slot.key != key) return std::nullopt;
  if (slot.cell_len == kOverflowCellLen) {
    const auto total_len = load<std::uint64_t>(data, slot.cell_off);
    const auto head = load<PageId>(data, slot.cell_off + 8);
    return read_overflow(head, total_len);
  }
  std::vector<std::byte> value(slot.cell_len);
  std::memcpy(value.data(), data.data() + slot.cell_off, slot.cell_len);
  return value;
}

bool BTree::contains(const BTreeKey& key) const {
  if (root() == kInvalidPage) return false;
  const PageId leaf = find_leaf(key);
  auto handle = pager_.pin(leaf);
  auto data = handle.data();
  const std::size_t i = leaf_lower_bound(data, key);
  return i < leaf_count(data) && leaf_slot(data, i).key == key;
}

// ---- Insert --------------------------------------------------------------

bool BTree::put(const BTreeKey& key, std::span<const std::byte> value) {
  if (root() == kInvalidPage) {
    const PageId leaf = pager_.allocate();
    auto handle = pager_.pin(leaf);
    init_leaf(handle.mutable_data());
    set_root(leaf);
  }
  bool replaced = false;
  auto split = insert_recursive(root(), key, value, replaced);
  if (split) {
    const PageId new_root = pager_.allocate();
    auto handle = pager_.pin(new_root);
    auto data = handle.mutable_data();
    init_internal(data, root());
    set_internal_entry(data, 0, {split->separator, split->right_page});
    set_internal_count(data, 1);
    set_root(new_root);
  }
  if (!replaced) bump_size(1);
  return replaced;
}

std::optional<BTree::SplitResult> BTree::insert_recursive(
    PageId page, const BTreeKey& key, std::span<const std::byte> value,
    bool& replaced) {
  std::uint8_t type;
  std::size_t child_index = 0;
  PageId child = kInvalidPage;
  {
    auto handle = pager_.pin(page);
    auto data = handle.data();
    type = page_type(data);
    if (type == kLeaf) {
      // Handled below without the pin held (leaf_insert re-pins), so the
      // split path can pin two leaves without this extra pin.
    } else {
      child_index = internal_descend_index(data, key);
      child = internal_child(data, child_index);
    }
  }
  if (type == kLeaf) return leaf_insert(page, key, value, replaced);

  auto child_split = insert_recursive(child, key, value, replaced);
  if (!child_split) return std::nullopt;

  auto handle = pager_.pin(page);
  auto data = handle.mutable_data();
  const std::size_t n = internal_count(data);
  const std::size_t capacity = internal_capacity(pager_.page_size());

  // Shift entries right and place the new separator at child_index.
  for (std::size_t j = n; j > child_index; --j) {
    set_internal_entry(data, j, internal_entry(data, j - 1));
  }
  set_internal_entry(data, child_index,
                     {child_split->separator, child_split->right_page});
  set_internal_count(data, static_cast<std::uint16_t>(n + 1));

  if (n + 1 <= capacity) return std::nullopt;

  // Split the internal node: median separator moves up.
  const std::size_t total = n + 1;
  const std::size_t mid = total / 2;
  const InternalEntry median = internal_entry(data, mid);

  const PageId right_page = pager_.allocate();
  auto right_handle = pager_.pin(right_page);
  auto right = right_handle.mutable_data();
  init_internal(right, median.child);
  std::uint16_t right_count = 0;
  for (std::size_t j = mid + 1; j < total; ++j) {
    set_internal_entry(right, right_count++, internal_entry(data, j));
  }
  set_internal_count(right, right_count);
  set_internal_count(data, static_cast<std::uint16_t>(mid));

  return SplitResult{median.key, right_page};
}

std::optional<BTree::SplitResult> BTree::leaf_insert(
    PageId page, const BTreeKey& key, std::span<const std::byte> value,
    bool& replaced) {
  auto handle = pager_.pin(page);
  auto data = handle.mutable_data();

  std::size_t i = leaf_lower_bound(data, key);
  if (i < leaf_count(data) && leaf_slot(data, i).key == key) {
    // Replace: drop the old entry (freeing any overflow chain), then fall
    // through to a plain insert.
    const auto old = leaf_slot(data, i);
    if (old.cell_len == kOverflowCellLen) {
      const auto head = load<PageId>(data, old.cell_off + 8);
      free_overflow(head);
    }
    leaf_remove_slot(data, i);
    replaced = true;
  }

  // Build the cell: inline if small, otherwise an overflow pointer.
  std::vector<std::byte> cell;
  if (value.size() <= inline_max()) {
    cell.assign(value.begin(), value.end());
  } else {
    const PageId head = write_overflow(value);
    cell.resize(kOverflowCellSize);
    store<std::uint64_t>(cell, 0, value.size());
    store<PageId>(cell, 8, head);
  }
  const std::uint16_t cell_len =
      value.size() <= inline_max() ? static_cast<std::uint16_t>(value.size())
                                   : kOverflowCellLen;

  const std::size_t need = kLeafSlotSize + cell.size();
  if (leaf_free_space(data) < need) {
    // Try compaction first: deleted/replaced cells leave heap garbage.
    const std::size_t live =
        kLeafHeader + leaf_count(data) * kLeafSlotSize + leaf_live_heap(data);
    if (pager_.page_size() - live >= need) {
      leaf_compact(data);
    }
  }

  if (leaf_free_space(data) >= need) {
    const auto off = leaf_write_cell(data, cell);
    leaf_insert_slot(data, i, {key, off, cell_len});
    return std::nullopt;
  }

  // Split.  Cell sizes vary (4 bytes to inline_max), so redistributing by
  // entry count can leave one half byte-full; instead gather every entry
  // *including the pending one* in key order and split by bytes.
  struct TempEntry {
    BTreeKey key;
    std::uint16_t cell_len;
    std::vector<std::byte> bytes;
  };
  const std::size_t n = leaf_count(data);
  MSSG_CHECK(n >= 1);
  std::vector<TempEntry> entries;
  entries.reserve(n + 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) entries.push_back({key, cell_len, cell});
    const auto slot = leaf_slot(data, j);
    const std::size_t len =
        (slot.cell_len == kOverflowCellLen) ? kOverflowCellSize : slot.cell_len;
    entries.push_back(
        {slot.key, slot.cell_len,
         std::vector<std::byte>(data.data() + slot.cell_off,
                                data.data() + slot.cell_off + len)});
  }
  if (i == n) entries.push_back({key, cell_len, cell});

  std::size_t total_bytes = 0;
  for (const auto& e : entries) total_bytes += kLeafSlotSize + e.bytes.size();
  std::size_t split = 1;  // at least one entry per half
  std::size_t left_bytes = kLeafSlotSize + entries[0].bytes.size();
  while (split + 1 < entries.size() && left_bytes < total_bytes / 2) {
    left_bytes += kLeafSlotSize + entries[split].bytes.size();
    ++split;
  }

  const PageId right_page = pager_.allocate();
  auto right_handle = pager_.pin(right_page);
  auto right = right_handle.mutable_data();
  init_leaf(right);
  set_leaf_next(right, leaf_next(data));

  init_leaf(data);
  set_leaf_next(data, right_page);

  auto write_entries = [](std::span<std::byte> target_page,
                          std::span<const TempEntry> list) {
    for (const auto& e : list) {
      const auto off = leaf_write_cell(target_page, e.bytes);
      leaf_insert_slot(target_page, leaf_count(target_page),
                       {e.key, off, e.cell_len});
    }
  };
  write_entries(data, std::span(entries).subspan(0, split));
  write_entries(right, std::span(entries).subspan(split));

  return SplitResult{leaf_slot(right, 0).key, right_page};
}

// ---- Erase ---------------------------------------------------------------

bool BTree::erase(const BTreeKey& key) {
  if (root() == kInvalidPage) return false;
  const PageId leaf = find_leaf(key);
  auto handle = pager_.pin(leaf);
  auto data = handle.mutable_data();
  const std::size_t i = leaf_lower_bound(data, key);
  if (i >= leaf_count(data) || leaf_slot(data, i).key != key) return false;
  const auto slot = leaf_slot(data, i);
  if (slot.cell_len == kOverflowCellLen) {
    const auto head = load<PageId>(data, slot.cell_off + 8);
    free_overflow(head);
  }
  leaf_remove_slot(data, i);
  bump_size(-1);
  return true;
}

// ---- Scan ----------------------------------------------------------------

void BTree::scan(const BTreeKey& lo, const BTreeKey& hi,
                 const std::function<bool(const BTreeKey&,
                                          std::span<const std::byte>)>& visit)
    const {
  if (root() == kInvalidPage || hi < lo) return;
  PageId page = find_leaf(lo);
  while (page != kInvalidPage) {
    // Copy out the entries of this leaf before calling the visitor so the
    // pin is not held across user code.
    std::vector<std::pair<BTreeKey, std::vector<std::byte>>> batch;
    PageId next;
    {
      auto handle = pager_.pin(page);
      auto data = handle.data();
      next = leaf_next(data);
      const std::size_t n = leaf_count(data);
      for (std::size_t i = leaf_lower_bound(data, lo); i < n; ++i) {
        const auto slot = leaf_slot(data, i);
        if (hi < slot.key) {
          next = kInvalidPage;
          break;
        }
        std::vector<std::byte> value;
        if (slot.cell_len == kOverflowCellLen) {
          const auto total_len = load<std::uint64_t>(data, slot.cell_off);
          const auto head = load<PageId>(data, slot.cell_off + 8);
          value = read_overflow(head, total_len);
        } else {
          value.resize(slot.cell_len);
          std::memcpy(value.data(), data.data() + slot.cell_off,
                      slot.cell_len);
        }
        batch.emplace_back(slot.key, std::move(value));
      }
    }
    for (const auto& [k, v] : batch) {
      if (!visit(k, v)) return;
    }
    page = next;
  }
}

}  // namespace mssg
