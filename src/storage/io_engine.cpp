#include "storage/io_engine.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "storage/fault_injector.hpp"

namespace mssg {

namespace {
// File → lane.  All requests against one file share a lane (and thus a
// worker's FIFO), which is what preserves per-file submission order.
// Null-file requests (resolved without disk I/O) ride lane 0.
std::size_t lane_of(const File* file, std::size_t lanes) {
  if (file == nullptr || lanes == 1) return 0;
  return std::hash<const File*>{}(file) % lanes;
}
}  // namespace

IoEngine::IoEngine(IoEngineOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_merge == 0) options_.max_merge = 1;
  // Published once, before any worker exists — part of the quiescent
  // snapshot contract.
  metrics_.counter("io.engine.lanes") = options_.workers;
  lanes_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  // Start threads only after the lane vector is final (a worker must
  // never observe lanes_ resizing).
  for (auto& lane : lanes_) {
    lane->worker = std::thread([this, &lane = *lane] { worker_loop(lane); });
  }
}

IoEngine::~IoEngine() {
  {
    std::unique_lock lock(mutex_);
    // stop_ lets each worker exit only once its lane is empty, so every
    // accepted write-behind request still reaches disk.
    stop_ = true;
  }
  for (auto& lane : lanes_) lane->work_cv.notify_all();
  for (auto& lane : lanes_) lane->worker.join();
  // Workers are gone; completed_/worker_stats_ are plain data now.  A
  // failed final write's error sitting here unpolled must not vanish
  // silently (the old engine's bug): log each, count them, and spill
  // the accounting to the sink so node totals stay truthful.
  std::uint64_t dropped = 0;
  for (const IoRequest& req : completed_) {
    if (req.error.empty()) continue;
    ++dropped;
    MSSG_LOG(kWarn) << "IoEngine destroyed with unpolled I/O error (key "
                    << req.key << "): " << req.error;
  }
  worker_stats_.engine_dropped_errors += dropped;
  if (options_.sink != nullptr) *options_.sink += worker_stats_;
  // Destroying an engine without polling a failed request is a caller
  // bug — the error had nowhere to surface.  (MSSG_CHECK throws, which a
  // destructor cannot; assert matches the BlockCache leak check.)
  assert(dropped == 0 && "IoEngine destroyed with unpolled I/O errors");
}

void IoEngine::submit(std::vector<IoRequest> batch) {
  if (batch.empty()) return;
  // Sort on the submitting thread: each worker then issues its share in
  // ascending file-offset order.  Stable, so two writes to the same
  // offset land in submission order.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const IoRequest& a, const IoRequest& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.offset < b.offset;
                   });
  // Split into per-lane sub-batches.  The batch is sorted by file, so
  // each lane's slice stays (file, offset)-sorted — the order the merge
  // pass in execute_batch relies on.
  std::vector<std::vector<IoRequest>> per_lane(lanes_.size());
  for (IoRequest& req : batch) {
    per_lane[lane_of(req.file, lanes_.size())].push_back(std::move(req));
  }
  bool notify[64] = {};  // lanes_ is small; see MSSG_CHECK below
  MSSG_CHECK(lanes_.size() <= 64);
  {
    std::unique_lock lock(mutex_);
    for (std::size_t i = 0; i < per_lane.size(); ++i) {
      if (per_lane[i].empty()) continue;
      lanes_[i]->queue.push_back(std::move(per_lane[i]));
      ++queued_batches_;
      notify[i] = true;
    }
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (notify[i]) lanes_[i]->work_cv.notify_one();
  }
}

std::vector<IoRequest> IoEngine::poll_completions(IoStats* stats) {
  std::vector<IoRequest> done;
  std::unique_lock lock(mutex_);
  done.swap(completed_);
  if (stats != nullptr) *stats += worker_stats_;
  worker_stats_.reset();
  completions_ready_.store(0, std::memory_order_release);
  return done;
}

void IoEngine::wait_for_completion() {
  std::unique_lock lock(mutex_);
  // Progress is the sequence number, not completed_: a batch that
  // completes and is immediately polled by another thread still counts
  // as "something happened since I started waiting".
  const std::uint64_t start = completion_seq_;
  done_cv_.wait(lock, [this, start] {
    return completion_seq_ != start || !completed_.empty() ||
           (queued_batches_ == 0 && busy_workers_ == 0);
  });
}

void IoEngine::drain() const {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock,
                [this] { return queued_batches_ == 0 && busy_workers_ == 0; });
}

MetricsSnapshot IoEngine::metrics() const {
  // Quiesce and snapshot under ONE critical section: releasing the lock
  // between the two (the old drain()-then-snapshot) let a concurrent
  // submit() wake a worker that writes the registry mid-snapshot.
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock,
                [this] { return queued_batches_ == 0 && busy_workers_ == 0; });
  return metrics_.snapshot();
}

std::size_t IoEngine::queue_depth() const {
  std::unique_lock lock(mutex_);
  return queued_batches_;
}

void IoEngine::execute_batch(std::vector<IoRequest>& batch,
                             IoStats& local) const {
  // Fuse runs of adjacent requests (same file, same kind, byte ranges
  // touching) into one vectored op.  The batch is (file, offset)-sorted,
  // so runs are maximal by construction; same-offset duplicates are
  // never contiguous (next.offset != prev.offset + prev.size) and thus
  // execute as separate ops in submission order.  With the FaultInjector
  // armed, merging is disabled so fault indices stay per-request.
  const bool merging =
      options_.max_merge > 1 && !FaultInjector::instance().enabled();
  std::size_t i = 0;
  while (i < batch.size()) {
    IoRequest& head = batch[i];
    if (head.file == nullptr) {  // resolved without disk I/O
      ++i;
      continue;
    }
    std::size_t run = 1;
    if (merging) {
      std::uint64_t end = head.offset + head.buffer.size();
      while (i + run < batch.size() && run < options_.max_merge) {
        const IoRequest& next = batch[i + run];
        if (next.file != head.file || next.kind != head.kind ||
            next.offset != end || next.buffer.empty()) {
          break;
        }
        end += next.buffer.size();
        ++run;
      }
    }
    // An exception must not escape the worker thread (std::terminate)
    // nor be swallowed: record it on every request of the run so
    // poll_completions() hands the failure back to the owning thread.
    try {
      if (run == 1) {
        if (head.kind == IoRequest::Kind::kRead) {
          head.file->read_at(head.offset, head.buffer, &local);
        } else {
          head.file->write_at(head.offset, head.buffer, &local);
        }
      } else if (head.kind == IoRequest::Kind::kRead) {
        std::vector<std::span<std::byte>> spans;
        spans.reserve(run);
        for (std::size_t j = 0; j < run; ++j) {
          spans.emplace_back(batch[i + j].buffer);
        }
        head.file->read_vectored(head.offset, spans, &local);
        local.vectored_merges += run - 1;
      } else {
        std::vector<std::span<const std::byte>> spans;
        spans.reserve(run);
        for (std::size_t j = 0; j < run; ++j) {
          spans.emplace_back(batch[i + j].buffer);
        }
        head.file->write_vectored(head.offset, spans, &local);
        local.vectored_merges += run - 1;
      }
    } catch (const std::exception& e) {
      for (std::size_t j = 0; j < run; ++j) {
        batch[i + j].error = e.what();
        if (batch[i + j].error.empty()) batch[i + j].error = "async I/O failed";
      }
    }
    i += run;
  }
}

void IoEngine::worker_loop(Lane& lane) {
  for (;;) {
    std::vector<IoRequest> batch;
    {
      std::unique_lock lock(mutex_);
      lane.work_cv.wait(lock, [&] { return !lane.queue.empty() || stop_; });
      if (lane.queue.empty()) {
        if (stop_) return;
        continue;
      }
      metrics_.histogram("io.engine.queue_depth").record(queued_batches_);
      batch = std::move(lane.queue.front());
      lane.queue.pop_front();
      --queued_batches_;
      // Dequeue and busy-increment in ONE critical section: there is no
      // instant where the queue looks empty while the work is not yet
      // accounted busy (the drain()-returns-early window).
      ++busy_workers_;
    }

    Timer timer;
    IoStats local;
    execute_batch(batch, local);
    const std::uint64_t micros = timer.nanos() / 1000;

    {
      std::unique_lock lock(mutex_);
      // Span bookkeeping moved under the lock: with N workers the
      // registry would otherwise be written concurrently.
      metrics_.counter("span.io.engine.batch") += 1;
      metrics_.histogram("span.io.engine.batch.us").record(micros);
      metrics_.histogram("io.engine.batch_requests").record(batch.size());
      completed_.insert(completed_.end(),
                        std::make_move_iterator(batch.begin()),
                        std::make_move_iterator(batch.end()));
      worker_stats_ += local;
      --busy_workers_;
      ++completion_seq_;
      completions_ready_.store(completed_.size(), std::memory_order_release);
    }
    done_cv_.notify_all();
  }
}

}  // namespace mssg
