#include "storage/io_engine.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace mssg {

IoEngine::IoEngine() : worker_([this] { worker_loop(); }) {}

IoEngine::~IoEngine() {
  {
    std::unique_lock lock(mutex_);
    // stop_ lets the worker exit only once the queue is empty, so every
    // accepted write-behind request still reaches disk.
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void IoEngine::submit(std::vector<IoRequest> batch) {
  if (batch.empty()) return;
  // Sort on the submitting thread: the worker then issues the batch in
  // ascending file-offset order.  Stable, so two writes to the same
  // offset land in submission order.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const IoRequest& a, const IoRequest& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.offset < b.offset;
                   });
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(batch));
  }
  work_cv_.notify_one();
}

std::vector<IoRequest> IoEngine::poll_completions(IoStats* stats) {
  std::vector<IoRequest> done;
  std::unique_lock lock(mutex_);
  done.swap(completed_);
  if (stats != nullptr) *stats += worker_stats_;
  worker_stats_.reset();
  completions_ready_.store(0, std::memory_order_release);
  return done;
}

void IoEngine::wait_for_completion() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] {
    return !completed_.empty() || (queue_.empty() && !busy_);
  });
}

void IoEngine::drain() const {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

MetricsSnapshot IoEngine::metrics() const {
  drain();
  // After drain() the worker is idle (observed under the mutex), so the
  // registry is quiescent and safe to read from this thread.
  return metrics_.snapshot();
}

std::size_t IoEngine::queue_depth() const {
  std::unique_lock lock(mutex_);
  return queue_.size();
}

void IoEngine::worker_loop() {
  for (;;) {
    std::vector<IoRequest> batch;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      metrics_.histogram("io.engine.queue_depth").record(queue_.size());
      batch = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }

    IoStats local;
    {
      TraceSpan span = metrics_.span("io.engine.batch");
      metrics_.histogram("io.engine.batch_requests").record(batch.size());
      for (IoRequest& req : batch) {
        if (req.file == nullptr) continue;  // resolved without disk I/O
        // An exception must not escape this thread (std::terminate) nor
        // be swallowed: record it on the request so poll_completions()
        // hands the failure back to the owning thread.
        try {
          if (req.kind == IoRequest::Kind::kRead) {
            req.file->read_at(req.offset, req.buffer, &local);
          } else {
            req.file->write_at(req.offset, req.buffer, &local);
          }
        } catch (const std::exception& e) {
          req.error = e.what();
          if (req.error.empty()) req.error = "async I/O failed";
        }
      }
    }

    {
      std::unique_lock lock(mutex_);
      completed_.insert(completed_.end(),
                        std::make_move_iterator(batch.begin()),
                        std::make_move_iterator(batch.end()));
      worker_stats_ += local;
      busy_ = false;
      completions_ready_.store(completed_.size(), std::memory_order_release);
    }
    done_cv_.notify_all();
  }
}

}  // namespace mssg
