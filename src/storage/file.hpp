// RAII wrapper over a POSIX file descriptor with positional I/O.
// All GraphDB backends do random block access, so the interface is
// pread/pwrite-shaped rather than stream-shaped.
//
// Every operation consults the process-global FaultInjector (one relaxed
// atomic load when disarmed), which is how the crash-recovery and
// torn-write suites simulate dying disks without touching this layer's
// callers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>

#include "storage/io_stats.hpp"

namespace mssg {

class File {
 public:
  File() = default;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  ~File();

  /// Opens (creating if necessary) a read/write file.  `stats` may be
  /// null; when set, every operation is accounted there.  The pointer
  /// must outlive the File.
  static File open(const std::filesystem::path& path, IoStats* stats = nullptr);

  /// Opens an existing file read-only; throws StorageError if missing.
  static File open_readonly(const std::filesystem::path& path,
                            IoStats* stats = nullptr);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Reads exactly buffer.size() bytes at `offset`.  Bytes beyond EOF
  /// read as zero (grDB files are sparse: blocks are addressed before
  /// they are first written).  Returns the number of real bytes read.
  std::size_t read_at(std::uint64_t offset, std::span<std::byte> buffer) const {
    return read_at(offset, buffer, stats_);
  }

  /// read_at accounting into an explicit stats block instead of the one
  /// bound at open().  The IoEngine worker uses this so cross-thread I/O
  /// never touches the owning node's (non-thread-safe) IoStats.
  std::size_t read_at(std::uint64_t offset, std::span<std::byte> buffer,
                      IoStats* stats) const;

  /// Writes exactly buffer.size() bytes at `offset`, extending the file.
  void write_at(std::uint64_t offset, std::span<const std::byte> buffer) const {
    write_at(offset, buffer, stats_);
  }

  /// write_at with explicit accounting (see the read_at overload).
  void write_at(std::uint64_t offset, std::span<const std::byte> buffer,
                IoStats* stats) const;

  /// Fills `buffers` from the contiguous byte range starting at
  /// `offset` with a single preadv (EOF zero-fills, like read_at).  The
  /// IoEngine uses this to fuse adjacent offset-sorted requests into one
  /// syscall.  With the FaultInjector armed the call degrades to one
  /// read_at per buffer, so fault/kill-point indices stay exactly the
  /// per-request ones the crash sweeps were calibrated against.
  void read_vectored(std::uint64_t offset,
                     std::span<const std::span<std::byte>> buffers,
                     IoStats* stats) const;

  /// Writes `buffers` back-to-back starting at `offset` with a single
  /// pwritev (see read_vectored for the FaultInjector fallback).
  void write_vectored(std::uint64_t offset,
                      std::span<const std::span<const std::byte>> buffers,
                      IoStats* stats) const;

  [[nodiscard]] std::uint64_t size() const;
  void truncate(std::uint64_t new_size) const;
  void sync() const;
  void close();

  /// Best-effort eviction of this file's pages from the OS page cache
  /// (fdatasync + POSIX_FADV_DONTNEED) — how the cold-cache benches make
  /// "cold" mean the device, not memory.  Not counted in IoStats.
  void drop_page_cache() const;

  /// The path this File was opened with (empty for a default-constructed
  /// File) — what fault-injection rules match against.
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  File(int fd, IoStats* stats, std::string path)
      : fd_(fd), stats_(stats), path_(std::move(path)) {}

  int fd_ = -1;
  IoStats* stats_ = nullptr;
  std::string path_;
};

}  // namespace mssg
