// Slotted-page heap file — the row store of RelationalDB (MySQL
// stand-in).  Rows are addressed by stable RowIds; a secondary B+tree
// index maps relational keys to RowIds, reproducing the index-probe +
// heap-fetch double indirection that costs MySQL its performance in the
// thesis' experiments.
//
// Page layout:
//   [type u8 (=4)][pad u8][slot_count u16][heap_start u16][pad u16]
//   [next_page u64] then slot_count 4-byte slot entries {off u16, len u16};
//   row cells grow downward from the page end.  off == 0xFFFF marks a
//   dead slot (slot ids stay stable so RowIds never dangle silently).
//   len == 0xFFFF marks a spilled row: the 16-byte cell holds
//   {total_len u64, overflow_head u64} (off-page storage, as InnoDB does
//   for large BLOBs).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "storage/pager.hpp"

namespace mssg {

struct RowId {
  PageId page = kInvalidPage;
  std::uint16_t slot = 0;

  friend constexpr bool operator==(const RowId&, const RowId&) = default;
};

class HeapFile {
 public:
  /// Persists its state in pager meta slots [meta_base, meta_base+2]:
  /// first page, last page (insert target), and row count.
  explicit HeapFile(Pager& pager, int meta_base = 0);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a row; returns its stable id.
  RowId insert(std::span<const std::byte> row);

  /// Reads a row.  Throws StorageError if the id is dead or out of range.
  [[nodiscard]] std::vector<std::byte> read(RowId id) const;

  /// Deletes a row (frees any overflow chain, tombstones the slot).
  void erase(RowId id);

  /// Replaces a row's contents.  Rewrites in place when the new row fits
  /// in the page (after compaction); otherwise the row migrates and the
  /// returned RowId differs from `id`.
  RowId update(RowId id, std::span<const std::byte> row);

  [[nodiscard]] std::uint64_t row_count() const;

  /// Full scan in page order (dead slots skipped).  The visitor returns
  /// false to stop early.
  void for_each(const std::function<bool(RowId, std::span<const std::byte>)>&
                    visit) const;

 private:
  [[nodiscard]] PageId first_page() const { return pager_.meta(meta_base_); }
  [[nodiscard]] PageId last_page() const { return pager_.meta(meta_base_ + 1); }
  void bump_rows(std::int64_t delta);

  PageId append_page();

  Pager& pager_;
  int meta_base_;
};

}  // namespace mssg
