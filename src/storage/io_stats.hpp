// Deterministic I/O accounting.  Every disk-touching layer updates an
// IoStats so experiments can report block/byte counts alongside wall
// time; counts are machine-independent, which makes the paper's "shape"
// claims checkable even when absolute timings differ.
//
// Not thread-safe: each simulated node owns its stats and the bench
// harness aggregates after joining the node threads.  publish_io()
// folds a stats block into a MetricsSnapshot under the shared "io.*"
// counter names (see common/metrics.hpp and DESIGN.md "I/O accounting").
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/metrics.hpp"

namespace mssg {

struct IoStats {
  std::uint64_t reads = 0;          ///< pread calls
  std::uint64_t writes = 0;         ///< pwrite calls
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t syncs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_pin_leaks = 0;  ///< blocks still pinned when their
                                      ///< cache was destroyed (handle leaks)
  std::uint64_t prefetch_issued = 0;  ///< blocks submitted for async read-ahead
  std::uint64_t prefetch_hits = 0;    ///< get() misses avoided by a prefetch
  std::uint64_t read_stalls = 0;      ///< get() calls that had to read the
                                      ///< block synchronously (blocking I/O on
                                      ///< the caller's critical path)
  std::uint64_t checksum_failures = 0;  ///< pages whose CRC trailer / sidecar
                                        ///< CRC failed verification
  std::uint64_t checksum_torn = 0;      ///< the subset attributed to a torn
                                        ///< write (vs bit rot)
  std::uint64_t journal_records = 0;    ///< undo/redo records appended
  std::uint64_t journal_replays = 0;    ///< records applied during recovery

  void reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    reads += other.reads;
    writes += other.writes;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    syncs += other.syncs;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    cache_pin_leaks += other.cache_pin_leaks;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    read_stalls += other.read_stalls;
    checksum_failures += other.checksum_failures;
    checksum_torn += other.checksum_torn;
    journal_records += other.journal_records;
    journal_replays += other.journal_replays;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  friend std::ostream& operator<<(std::ostream& os, const IoStats& s) {
    return os << "reads=" << s.reads << " writes=" << s.writes
              << " bytes_read=" << s.bytes_read
              << " bytes_written=" << s.bytes_written
              << " hits=" << s.cache_hits << " misses=" << s.cache_misses
              << " evictions=" << s.cache_evictions;
  }
};

/// Adds an IoStats block to a snapshot under "<prefix>.<field>" counters.
inline void publish_io(const IoStats& s, MetricsSnapshot& snap,
                       std::string_view prefix = "io") {
  const std::string p(prefix);
  snap.add(p + ".reads", s.reads);
  snap.add(p + ".writes", s.writes);
  snap.add(p + ".bytes_read", s.bytes_read);
  snap.add(p + ".bytes_written", s.bytes_written);
  snap.add(p + ".syncs", s.syncs);
  snap.add(p + ".cache_hits", s.cache_hits);
  snap.add(p + ".cache_misses", s.cache_misses);
  snap.add(p + ".cache_evictions", s.cache_evictions);
  snap.add(p + ".cache_pin_leaks", s.cache_pin_leaks);
  snap.add(p + ".prefetch_issued", s.prefetch_issued);
  snap.add(p + ".prefetch_hits", s.prefetch_hits);
  snap.add(p + ".read_stalls", s.read_stalls);
  // Durability counters live under a fixed "storage." prefix — their
  // names are part of the observability contract (DESIGN.md "Durability
  // & recovery") regardless of which io.* namespace a node publishes to.
  snap.add("storage.checksum_failures", s.checksum_failures);
  snap.add("storage.checksum_torn", s.checksum_torn);
  snap.add("storage.journal_records", s.journal_records);
  snap.add("storage.journal_replays", s.journal_replays);
}

}  // namespace mssg
