// Deterministic I/O accounting.  Every disk-touching layer updates an
// IoStats so experiments can report block/byte counts alongside wall
// time; counts are machine-independent, which makes the paper's "shape"
// claims checkable even when absolute timings differ.
//
// Counters are relaxed atomics: a simulated node owns its stats, but the
// concurrent query engine runs several read-only analyses against one
// node at a time, so increments can race between query threads (and the
// IoEngine completion path).  Relaxed ordering is enough — each field is
// an independent monotonic counter; cross-field snapshots are taken at
// quiescent points (after queries drain / node threads join).
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/metrics.hpp"

namespace mssg {

namespace detail {
/// A relaxed-by-default monotonic counter.  Keeps call sites identical to
/// the plain-uint64 days (`++c`, `c += n`, implicit reads) while making
/// cross-thread increments well-defined.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(std::uint64_t v) : value_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedCounter(const RelaxedCounter& o) : value_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    value_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator std::uint64_t() const { return load(); }  // NOLINT
  [[nodiscard]] std::uint64_t load() const {
    return value_.load(std::memory_order_relaxed);
  }

  RelaxedCounter& operator+=(std::uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() { return *this += 1; }

 private:
  std::atomic<std::uint64_t> value_{0};
};
}  // namespace detail

struct IoStats {
  detail::RelaxedCounter reads;          ///< pread calls
  detail::RelaxedCounter writes;         ///< pwrite calls
  detail::RelaxedCounter bytes_read;
  detail::RelaxedCounter bytes_written;
  detail::RelaxedCounter syncs;
  detail::RelaxedCounter cache_hits;
  detail::RelaxedCounter cache_misses;
  detail::RelaxedCounter cache_evictions;
  detail::RelaxedCounter cache_pin_leaks;  ///< blocks still pinned when their
                                           ///< cache was destroyed (leaks)
  detail::RelaxedCounter cache_probation_hits;  ///< 2Q: hits on first-touch
                                                ///< (probation) blocks
  detail::RelaxedCounter cache_protected_hits;  ///< 2Q: hits on re-referenced
                                                ///< (protected) blocks
  detail::RelaxedCounter prefetch_issued;  ///< blocks submitted for async
                                           ///< read-ahead
  detail::RelaxedCounter prefetch_hits;    ///< get() misses avoided by a
                                           ///< prefetch
  detail::RelaxedCounter read_stalls;      ///< get() calls that had to read
                                           ///< the block synchronously
                                           ///< (blocking I/O on the caller's
                                           ///< critical path)
  detail::RelaxedCounter checksum_failures;  ///< pages whose CRC trailer /
                                             ///< sidecar CRC failed
  detail::RelaxedCounter checksum_torn;      ///< the subset attributed to a
                                             ///< torn write (vs bit rot)
  detail::RelaxedCounter journal_records;    ///< undo/redo records appended
  detail::RelaxedCounter journal_replays;    ///< records applied in recovery
  detail::RelaxedCounter journal_group_commits;  ///< redo commit records
                                                 ///< written (each retires a
                                                 ///< whole group of flushes)
  detail::RelaxedCounter journal_deferred_flushes;  ///< flushes whose fsyncs
                                                    ///< were deferred to a
                                                    ///< group-commit boundary
  detail::RelaxedCounter vectored_merges;  ///< adjacent requests fused into
                                           ///< a preadv/pwritev neighbor
                                           ///< (k-request op counts k-1)
  detail::RelaxedCounter engine_dropped_errors;  ///< async I/O errors still
                                                 ///< unpolled when their
                                                 ///< IoEngine was destroyed
  detail::RelaxedCounter mmap_maps;          ///< files mapped read-only for
                                             ///< the sealed zero-copy path
  detail::RelaxedCounter mmap_mapped_bytes;  ///< bytes covered by those maps
  detail::RelaxedCounter mmap_zero_copy_reads;  ///< sub-block reads served
                                                ///< as mapped views (no
                                                ///< cache-frame copy)
  detail::RelaxedCounter mmap_lazy_verifies;  ///< mapped blocks whose sidecar
                                              ///< checksum was paid (once,
                                              ///< on first mapped access)
  detail::RelaxedCounter mmap_fallbacks;  ///< mapped-path declines: unsealed
                                          ///< state at map time, or a
                                          ///< mutation/replay unmapping a
                                          ///< live mapping
  detail::RelaxedCounter txn_snapshot_reads;  ///< reads served from a pinned
                                              ///< epoch (COW version or
                                              ///< frozen extent) instead of
                                              ///< live state
  detail::RelaxedCounter txn_cow_pages;  ///< pre-image versions captured on
                                         ///< the first mutation of a
                                         ///< page/chunk in an epoch

  void reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    reads += other.reads;
    writes += other.writes;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    syncs += other.syncs;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    cache_pin_leaks += other.cache_pin_leaks;
    cache_probation_hits += other.cache_probation_hits;
    cache_protected_hits += other.cache_protected_hits;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    read_stalls += other.read_stalls;
    checksum_failures += other.checksum_failures;
    checksum_torn += other.checksum_torn;
    journal_records += other.journal_records;
    journal_replays += other.journal_replays;
    journal_group_commits += other.journal_group_commits;
    journal_deferred_flushes += other.journal_deferred_flushes;
    vectored_merges += other.vectored_merges;
    engine_dropped_errors += other.engine_dropped_errors;
    mmap_maps += other.mmap_maps;
    mmap_mapped_bytes += other.mmap_mapped_bytes;
    mmap_zero_copy_reads += other.mmap_zero_copy_reads;
    mmap_lazy_verifies += other.mmap_lazy_verifies;
    mmap_fallbacks += other.mmap_fallbacks;
    txn_snapshot_reads += other.txn_snapshot_reads;
    txn_cow_pages += other.txn_cow_pages;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  friend std::ostream& operator<<(std::ostream& os, const IoStats& s) {
    return os << "reads=" << s.reads << " writes=" << s.writes
              << " bytes_read=" << s.bytes_read
              << " bytes_written=" << s.bytes_written
              << " hits=" << s.cache_hits << " misses=" << s.cache_misses
              << " evictions=" << s.cache_evictions;
  }
};

/// Adds an IoStats block to a snapshot under "<prefix>.<field>" counters.
inline void publish_io(const IoStats& s, MetricsSnapshot& snap,
                       std::string_view prefix = "io") {
  const std::string p(prefix);
  snap.add(p + ".reads", s.reads);
  snap.add(p + ".writes", s.writes);
  snap.add(p + ".bytes_read", s.bytes_read);
  snap.add(p + ".bytes_written", s.bytes_written);
  snap.add(p + ".syncs", s.syncs);
  snap.add(p + ".cache_hits", s.cache_hits);
  snap.add(p + ".cache_misses", s.cache_misses);
  snap.add(p + ".cache_evictions", s.cache_evictions);
  snap.add(p + ".cache_pin_leaks", s.cache_pin_leaks);
  snap.add(p + ".prefetch_issued", s.prefetch_issued);
  snap.add(p + ".prefetch_hits", s.prefetch_hits);
  snap.add(p + ".read_stalls", s.read_stalls);
  snap.add(p + ".vectored_merges", s.vectored_merges);
  snap.add(p + ".engine.dropped_errors", s.engine_dropped_errors);
  // Durability counters live under a fixed "storage." prefix — their
  // names are part of the observability contract (DESIGN.md "Durability
  // & recovery") regardless of which io.* namespace a node publishes to.
  snap.add("storage.checksum_failures", s.checksum_failures);
  snap.add("storage.checksum_torn", s.checksum_torn);
  snap.add("storage.journal_records", s.journal_records);
  snap.add("storage.journal_replays", s.journal_replays);
  // Group-commit counters share the journal's fixed namespace.
  snap.add("journal.group_commits", s.journal_group_commits);
  snap.add("journal.deferred_flushes", s.journal_deferred_flushes);
  // 2Q attribution counters likewise keep fixed names (DESIGN.md
  // "Concurrent queries & the 2Q shared cache").
  snap.add("cache.qprobation_hits", s.cache_probation_hits);
  snap.add("cache.qprotected_hits", s.cache_protected_hits);
  // The sealed zero-copy read path (DESIGN.md "Sealed scans: the
  // zero-copy mmap read path") also publishes under a fixed namespace.
  snap.add("mmap.maps", s.mmap_maps);
  snap.add("mmap.mapped_bytes", s.mmap_mapped_bytes);
  snap.add("mmap.zero_copy_reads", s.mmap_zero_copy_reads);
  snap.add("mmap.lazy_verifies", s.mmap_lazy_verifies);
  snap.add("mmap.fallbacks", s.mmap_fallbacks);
  // Snapshot-isolation counters (DESIGN.md "Snapshot isolation") keep a
  // fixed "txn." namespace; backends publish txn.epochs_live alongside
  // from their EpochManager in publish_metrics.
  snap.add("txn.snapshot_reads", s.txn_snapshot_reads);
  snap.add("txn.cow_pages", s.txn_cow_pages);
}

}  // namespace mssg
