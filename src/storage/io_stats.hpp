// Deterministic I/O accounting.  Every disk-touching layer updates an
// IoStats so experiments can report block/byte counts alongside wall
// time; counts are machine-independent, which makes the paper's "shape"
// claims checkable even when absolute timings differ.
//
// Not thread-safe: each simulated node owns its stats and the bench
// harness aggregates after joining the node threads.
#pragma once

#include <cstdint>
#include <ostream>

namespace mssg {

struct IoStats {
  std::uint64_t reads = 0;          ///< pread calls
  std::uint64_t writes = 0;         ///< pwrite calls
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t syncs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  void reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    reads += other.reads;
    writes += other.writes;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    syncs += other.syncs;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  friend std::ostream& operator<<(std::ostream& os, const IoStats& s) {
    return os << "reads=" << s.reads << " writes=" << s.writes
              << " bytes_read=" << s.bytes_read
              << " bytes_written=" << s.bytes_written
              << " hits=" << s.cache_hits << " misses=" << s.cache_misses
              << " evictions=" << s.cache_evictions;
  }
};

}  // namespace mssg
