#include "storage/pager.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "storage/checksum.hpp"

namespace mssg {

Pager::Pager(const std::filesystem::path& path, std::size_t page_size,
             std::size_t cache_capacity_bytes, IoStats* stats, bool async_io,
             bool journal, std::size_t io_workers,
             std::uint32_t journal_sync_interval)
    : page_size_(page_size),
      usable_(page_checksum::usable_bytes(page_size)),
      file_(File::open(path, stats)),
      stats_(stats),
      cache_(cache_capacity_bytes, stats) {
  MSSG_CHECK(page_size_ >= 256 && (page_size_ & (page_size_ - 1)) == 0);
  MSSG_CHECK(sizeof(Header) <= usable_);
  store_id_ = cache_.register_store(
      page_size_,
      [this](std::uint64_t block, std::span<std::byte> out) {
        file_.read_at(block * page_size_, out);
      },
      [this](std::uint64_t block, std::span<const std::byte> in) {
        capture_undo(block);
        // Synchronous write-back overwrites immediately, so the barrier
        // is per-call here; the async path batches it (write_barrier).
        if (journal_ != nullptr) journal_->undo_barrier();
        file_.write_at(block * page_size_, in);
      },
      // Pages map 1:1 to file offsets, so the locator never needs store
      // metadata; past-EOF reads zero-fill exactly like the sync reader.
      [this](std::uint64_t block, bool for_write) -> std::optional<AsyncTarget> {
        // The pre-image must be durable before the worker can overwrite
        // in place; capturing here, on the owning thread at submit time,
        // keeps the journal single-threaded.
        if (for_write) capture_undo(block);
        return AsyncTarget{&file_, block * page_size_};
      });
  cache_.set_store_hooks(
      store_id_,
      {[](std::uint64_t, std::span<std::byte> page) {
         page_checksum::seal(page);
       },
       [this](std::uint64_t block, std::span<std::byte> page) {
         verify_page(block, page);
       },
       usable_,
       // One undo fdatasync per write-behind batch, not per page.
       [this] {
         if (journal_ != nullptr) journal_->undo_barrier();
       }});
  if (async_io) cache_.enable_async_io(io_workers);

  if (journal) {
    journal_ =
        std::make_unique<WriteJournal>(path, stats, journal_sync_interval);
    recover(/*allow_rollback=*/true);
  }
  // A non-empty file must carry a valid header — even one shorter than
  // our page size (that means it was created with a smaller page size,
  // which load_header rejects explicitly).
  if (file_.size() > 0) {
    load_header();
  } else {
    store_header();
  }
}

Pager::~Pager() {
  // A destructor cannot throw; anything a failing flush would have
  // reported dies with the process, exactly as a crash would.  Force a
  // group-commit boundary: a deferred group must not outlive the pager.
  try {
    flush(/*force_commit=*/true);
  } catch (...) {
  }
}

void Pager::verify_page(std::uint64_t block,
                        std::span<const std::byte> page) const {
  using page_checksum::State;
  const State state = page_checksum::verify(page);
  // kZero is a legal unsealed read: sparse pages past EOF (and pages
  // rolled back to a pre-creation state) read as all zeros.
  if (state == State::kValid || state == State::kZero) return;
  if (stats_ != nullptr) {
    ++stats_->checksum_failures;
    if (state == State::kTorn) ++stats_->checksum_torn;
  }
  throw StorageError("pager: page " + std::to_string(block) +
                     " failed checksum verification (" +
                     (state == State::kTorn ? "torn write" : "bit rot") + ")");
}

void Pager::capture_undo(std::uint64_t block) {
  if (journal_ == nullptr || in_flush_ || journal_->undo_logged(block)) return;
  std::vector<std::byte> old(page_size_);
  file_.read_at(block * page_size_, old);  // past EOF reads as zeros
  journal_->undo_record(block, old);
}

void Pager::recover(bool allow_rollback) {
  WriteJournal::Recovery rec = journal_->plan_recovery();
  if (rec.action == WriteJournal::Action::kNone) return;
  if (rec.action == WriteJournal::Action::kRollBack && !allow_rollback) {
    // Mid-life flush: an uncommitted epoch's pre-images stay armed; the
    // flush about to run supersedes it (and trims on success).
    return;
  }
  for (const WriteJournal::Record& r : rec.records) {
    file_.write_at(r.tag * page_size_, r.payload);
  }
  file_.sync();
  journal_->trim();
}

void Pager::load_header() {
  std::vector<std::byte> buf(page_size_);
  file_.read_at(0, buf);
  using page_checksum::State;
  const State state = page_checksum::verify(buf);
  if (state == State::kZero) {
    // An all-zero header page: the file was created but rolled back
    // before its first committed flush.  Treat it as fresh.
    store_header();
    return;
  }
  if (state != State::kValid) verify_page(0, buf);
  Header h;
  std::memcpy(&h, buf.data(), sizeof(h));
  if (h.magic != kMagic) throw StorageError("pager: bad magic in header page");
  if (h.page_size != page_size_) {
    throw StorageError("pager: file has page size " +
                       std::to_string(h.page_size) + ", expected " +
                       std::to_string(page_size_));
  }
  page_count_ = h.page_count;
  free_head_ = h.free_head;
  std::memcpy(user_meta_, h.user, sizeof(user_meta_));

  // Rebuild the free-list mirror, refusing a corrupt list up front: a
  // page reached twice means a cycle, and recycling it would hand the
  // same page to two owners.  Each hop reads (and verifies) the full
  // page — the free list is the one structure walked outside the cache.
  free_set_.clear();
  PageId p = free_head_;
  std::vector<std::byte> link(page_size_);
  while (p != kInvalidPage) {
    if (p >= page_count_) {
      throw StorageError("pager: free list points past the file (page " +
                         std::to_string(p) + ")");
    }
    if (!free_set_.insert(p).second) {
      throw StorageError("pager: free list cycle at page " +
                         std::to_string(p));
    }
    file_.read_at(p * page_size_, link);
    verify_page(p, link);
    std::memcpy(&p, link.data(), sizeof(p));
  }
}

std::vector<std::byte> Pager::build_header_page() const {
  Header h{};
  h.magic = kMagic;
  h.page_size = page_size_;
  h.page_count = page_count_;
  h.free_head = free_head_;
  std::memcpy(h.user, user_meta_, sizeof(user_meta_));
  std::vector<std::byte> buf(page_size_);
  std::memcpy(buf.data(), &h, sizeof(h));
  page_checksum::seal(buf);
  return buf;
}

void Pager::store_header() {
  capture_undo(0);
  if (journal_ != nullptr) journal_->undo_barrier();
  file_.write_at(0, build_header_page());
  header_dirty_ = false;
}

PageId Pager::allocate() {
  PageId page;
  if (free_head_ != kInvalidPage) {
    page = free_head_;
    // The mirror must agree with the list head; a missing entry means a
    // page is on the list twice (cycle) and this allocate would alias a
    // page already handed out.  Fail loudly instead of corrupting it.
    if (free_set_.erase(page) == 0) {
      throw StorageError("pager: free list corruption — page " +
                         std::to_string(page) +
                         " recycled twice (cyclic free list)");
    }
    {
      auto handle = cache_.get(store_id_, page);
      std::uint64_t next;
      std::memcpy(&next, handle.data().data(), sizeof(next));
      free_head_ = next;
    }
    header_dirty_ = true;
    // Zero the recycled page so callers start from a clean slate.
    auto handle = cache_.get(store_id_, page);
    auto data = handle.mutable_data();
    std::memset(data.data(), 0, data.size());
  } else {
    page = page_count_++;
    header_dirty_ = true;
    // Fresh extent: create() zero-fills WITHOUT reading the file — the
    // bytes there were never committed and may be a previous crash's
    // torn garbage, which the checksum hook would (rightly) reject.
    cache_.create(store_id_, page);
  }
  return page;
}

void Pager::free_page(PageId page) {
  MSSG_CHECK(page != kInvalidPage && page < page_count_);
  if (free_set_.contains(page)) {
    throw StorageError("pager: double free of page " + std::to_string(page));
  }
  if (const int pins = cache_.pin_count(store_id_, page); pins > 0) {
    throw StorageError("pager: freeing page " + std::to_string(page) +
                       " while still pinned " + std::to_string(pins) + "x");
  }
  auto handle = cache_.get(store_id_, page);
  auto data = handle.mutable_data();
  std::memcpy(data.data(), &free_head_, sizeof(free_head_));
  free_head_ = page;
  free_set_.insert(page);
  header_dirty_ = true;
}

BlockHandle Pager::pin(PageId page) {
  MSSG_CHECK(page != kInvalidPage && page < page_count_);
  return cache_.get(store_id_, page);
}

void Pager::prefetch(std::span<const PageId> pages) {
  if (!cache_.async_enabled()) return;
  std::vector<std::uint64_t> blocks;
  blocks.reserve(pages.size());
  for (const PageId page : pages) {
    if (page != kInvalidPage && page < page_count_) blocks.push_back(page);
  }
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  cache_.prefetch_async(store_id_, blocks);
}

std::uint64_t Pager::meta(int slot) const {
  MSSG_CHECK(slot >= 0 && slot < kMetaSlots);
  return user_meta_[slot];
}

void Pager::set_meta(int slot, std::uint64_t value) {
  MSSG_CHECK(slot >= 0 && slot < kMetaSlots);
  user_meta_[slot] = value;
  header_dirty_ = true;
}

void Pager::flush(bool force_commit) {
  if (journal_ == nullptr) {
    cache_.flush();
    if (header_dirty_) store_header();
    return;
  }

  // Write-behind payloads must be on disk (and their undo records
  // captured at submit time made good) before we enumerate dirty pages.
  cache_.drain_pending();
  // A previous flush may have died between redo-commit and trim; finish
  // its in-place phase first so epochs never interleave.  With a group
  // pending this is impossible by construction (the last boundary
  // trimmed, and deferred flushes never commit), so skip the check —
  // plan_recovery() re-reads the whole journal, which would turn a long
  // deferred window into quadratic parse traffic.
  if (!journal_->group_pending()) recover(/*allow_rollback=*/false);

  std::size_t dirty = 0;
  cache_.for_each_dirty(
      [&dirty](std::uint16_t, std::uint64_t, std::span<std::byte>) {
        ++dirty;
      });
  const bool work = dirty != 0 || header_dirty_ || journal_->dirty_epoch();
  // A pending deferred group still needs its boundary commit even when
  // nothing new is dirty (e.g. the destructor's forced flush).
  if (!work && !journal_->group_pending()) return;

  const std::vector<std::byte> header_page = build_header_page();
  if (work) {
    // 1. Redo-log post-images of everything this flush will write
    // (appending to the open group's records, if any).
    journal_->redo_begin();
    cache_.for_each_dirty(
        [this](std::uint16_t, std::uint64_t block, std::span<std::byte> page) {
          page_checksum::seal(page);  // idempotent — write_back re-seals
          journal_->redo_record(block, page);
        });
    journal_->redo_record(0, header_page);
  }
  if (!force_commit && !journal_->commit_due()) {
    // Group commit: close this flush without any fsync.  Pages stay
    // dirty in the cache and the undo epoch stays armed — a crash now
    // rolls the whole group back to the last boundary atomically; the
    // boundary flush re-records whatever is still dirty and commits
    // everything at once.
    journal_->redo_defer();
    return;
  }
  // 2. Eviction writes from this epoch become durable BEFORE the commit
  // record: a post-commit crash rolls forward only the redo records, so
  // everything else the epoch touched must already be safe.
  file_.sync();
  // 3. Commit.  From here on the whole group is logically done.
  journal_->redo_commit();
  // 4. In-place phase (no undo capture — the redo log covers us now).
  in_flush_ = true;
  try {
    cache_.flush();
    file_.write_at(0, header_page);
    file_.sync();
  } catch (...) {
    in_flush_ = false;
    throw;
  }
  in_flush_ = false;
  header_dirty_ = false;
  // 5. Retire the epoch (undo before redo — see journal.hpp).
  journal_->trim();
}

}  // namespace mssg
