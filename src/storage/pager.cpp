#include "storage/pager.hpp"

#include <cstring>

#include "common/error.hpp"

namespace mssg {

Pager::Pager(const std::filesystem::path& path, std::size_t page_size,
             std::size_t cache_capacity_bytes, IoStats* stats)
    : page_size_(page_size),
      file_(File::open(path, stats)),
      stats_(stats),
      cache_(cache_capacity_bytes, stats) {
  MSSG_CHECK(page_size_ >= 256 && (page_size_ & (page_size_ - 1)) == 0);
  store_id_ = cache_.register_store(
      page_size_,
      [this](std::uint64_t block, std::span<std::byte> out) {
        file_.read_at(block * page_size_, out);
      },
      [this](std::uint64_t block, std::span<const std::byte> in) {
        file_.write_at(block * page_size_, in);
      });
  // A non-empty file must carry a valid header — even one shorter than
  // our page size (that means it was created with a smaller page size,
  // which load_header rejects explicitly).
  if (file_.size() > 0) {
    load_header();
  } else {
    store_header();
  }
}

Pager::~Pager() {
  cache_.flush();
  if (header_dirty_) store_header();
}

void Pager::load_header() {
  std::vector<std::byte> buf(page_size_);
  file_.read_at(0, buf);
  Header h;
  std::memcpy(&h, buf.data(), sizeof(h));
  if (h.magic != kMagic) throw StorageError("pager: bad magic in header page");
  if (h.page_size != page_size_) {
    throw StorageError("pager: file has page size " +
                       std::to_string(h.page_size) + ", expected " +
                       std::to_string(page_size_));
  }
  page_count_ = h.page_count;
  free_head_ = h.free_head;
  std::memcpy(user_meta_, h.user, sizeof(user_meta_));
}

void Pager::store_header() {
  Header h{};
  h.magic = kMagic;
  h.page_size = page_size_;
  h.page_count = page_count_;
  h.free_head = free_head_;
  std::memcpy(h.user, user_meta_, sizeof(user_meta_));
  std::vector<std::byte> buf(page_size_);
  std::memcpy(buf.data(), &h, sizeof(h));
  file_.write_at(0, buf);
  header_dirty_ = false;
}

PageId Pager::allocate() {
  PageId page;
  if (free_head_ != kInvalidPage) {
    page = free_head_;
    {
      auto handle = cache_.get(store_id_, page);
      std::uint64_t next;
      std::memcpy(&next, handle.data().data(), sizeof(next));
      free_head_ = next;
    }
    header_dirty_ = true;
  } else {
    page = page_count_++;
    header_dirty_ = true;
  }
  // Zero the page so callers start from a clean slate.
  auto handle = cache_.get(store_id_, page);
  auto data = handle.mutable_data();
  std::memset(data.data(), 0, data.size());
  return page;
}

void Pager::free_page(PageId page) {
  MSSG_CHECK(page != kInvalidPage && page < page_count_);
  auto handle = cache_.get(store_id_, page);
  auto data = handle.mutable_data();
  std::memcpy(data.data(), &free_head_, sizeof(free_head_));
  free_head_ = page;
  header_dirty_ = true;
}

BlockHandle Pager::pin(PageId page) {
  MSSG_CHECK(page != kInvalidPage && page < page_count_);
  return cache_.get(store_id_, page);
}

std::uint64_t Pager::meta(int slot) const {
  MSSG_CHECK(slot >= 0 && slot < kMetaSlots);
  return user_meta_[slot];
}

void Pager::set_meta(int slot, std::uint64_t value) {
  MSSG_CHECK(slot >= 0 && slot < kMetaSlots);
  user_meta_[slot] = value;
  header_dirty_ = true;
}

void Pager::flush() {
  cache_.flush();
  if (header_dirty_) store_header();
}

}  // namespace mssg
