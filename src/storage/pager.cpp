#include "storage/pager.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace mssg {

Pager::Pager(const std::filesystem::path& path, std::size_t page_size,
             std::size_t cache_capacity_bytes, IoStats* stats, bool async_io)
    : page_size_(page_size),
      file_(File::open(path, stats)),
      stats_(stats),
      cache_(cache_capacity_bytes, stats) {
  MSSG_CHECK(page_size_ >= 256 && (page_size_ & (page_size_ - 1)) == 0);
  store_id_ = cache_.register_store(
      page_size_,
      [this](std::uint64_t block, std::span<std::byte> out) {
        file_.read_at(block * page_size_, out);
      },
      [this](std::uint64_t block, std::span<const std::byte> in) {
        file_.write_at(block * page_size_, in);
      },
      // Pages map 1:1 to file offsets, so the locator never needs store
      // metadata; past-EOF reads zero-fill exactly like the sync reader.
      [this](std::uint64_t block, bool) -> std::optional<AsyncTarget> {
        return AsyncTarget{&file_, block * page_size_};
      });
  if (async_io) cache_.enable_async_io();
  // A non-empty file must carry a valid header — even one shorter than
  // our page size (that means it was created with a smaller page size,
  // which load_header rejects explicitly).
  if (file_.size() > 0) {
    load_header();
  } else {
    store_header();
  }
}

Pager::~Pager() {
  cache_.flush();
  if (header_dirty_) store_header();
}

void Pager::load_header() {
  std::vector<std::byte> buf(page_size_);
  file_.read_at(0, buf);
  Header h;
  std::memcpy(&h, buf.data(), sizeof(h));
  if (h.magic != kMagic) throw StorageError("pager: bad magic in header page");
  if (h.page_size != page_size_) {
    throw StorageError("pager: file has page size " +
                       std::to_string(h.page_size) + ", expected " +
                       std::to_string(page_size_));
  }
  page_count_ = h.page_count;
  free_head_ = h.free_head;
  std::memcpy(user_meta_, h.user, sizeof(user_meta_));

  // Rebuild the free-list mirror, refusing a corrupt list up front: a
  // page reached twice means a cycle, and recycling it would hand the
  // same page to two owners.
  free_set_.clear();
  PageId p = free_head_;
  std::array<std::byte, sizeof(PageId)> next{};
  while (p != kInvalidPage) {
    if (p >= page_count_) {
      throw StorageError("pager: free list points past the file (page " +
                         std::to_string(p) + ")");
    }
    if (!free_set_.insert(p).second) {
      throw StorageError("pager: free list cycle at page " +
                         std::to_string(p));
    }
    file_.read_at(p * page_size_, next);
    std::memcpy(&p, next.data(), sizeof(p));
  }
}

void Pager::store_header() {
  Header h{};
  h.magic = kMagic;
  h.page_size = page_size_;
  h.page_count = page_count_;
  h.free_head = free_head_;
  std::memcpy(h.user, user_meta_, sizeof(user_meta_));
  std::vector<std::byte> buf(page_size_);
  std::memcpy(buf.data(), &h, sizeof(h));
  file_.write_at(0, buf);
  header_dirty_ = false;
}

PageId Pager::allocate() {
  PageId page;
  if (free_head_ != kInvalidPage) {
    page = free_head_;
    // The mirror must agree with the list head; a missing entry means a
    // page is on the list twice (cycle) and this allocate would alias a
    // page already handed out.  Fail loudly instead of corrupting it.
    if (free_set_.erase(page) == 0) {
      throw StorageError("pager: free list corruption — page " +
                         std::to_string(page) +
                         " recycled twice (cyclic free list)");
    }
    {
      auto handle = cache_.get(store_id_, page);
      std::uint64_t next;
      std::memcpy(&next, handle.data().data(), sizeof(next));
      free_head_ = next;
    }
    header_dirty_ = true;
  } else {
    page = page_count_++;
    header_dirty_ = true;
  }
  // Zero the page so callers start from a clean slate.
  auto handle = cache_.get(store_id_, page);
  auto data = handle.mutable_data();
  std::memset(data.data(), 0, data.size());
  return page;
}

void Pager::free_page(PageId page) {
  MSSG_CHECK(page != kInvalidPage && page < page_count_);
  if (free_set_.contains(page)) {
    throw StorageError("pager: double free of page " + std::to_string(page));
  }
  if (const int pins = cache_.pin_count(store_id_, page); pins > 0) {
    throw StorageError("pager: freeing page " + std::to_string(page) +
                       " while still pinned " + std::to_string(pins) + "x");
  }
  auto handle = cache_.get(store_id_, page);
  auto data = handle.mutable_data();
  std::memcpy(data.data(), &free_head_, sizeof(free_head_));
  free_head_ = page;
  free_set_.insert(page);
  header_dirty_ = true;
}

BlockHandle Pager::pin(PageId page) {
  MSSG_CHECK(page != kInvalidPage && page < page_count_);
  return cache_.get(store_id_, page);
}

void Pager::prefetch(std::span<const PageId> pages) {
  if (!cache_.async_enabled()) return;
  std::vector<std::uint64_t> blocks;
  blocks.reserve(pages.size());
  for (const PageId page : pages) {
    if (page != kInvalidPage && page < page_count_) blocks.push_back(page);
  }
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  cache_.prefetch_async(store_id_, blocks);
}

std::uint64_t Pager::meta(int slot) const {
  MSSG_CHECK(slot >= 0 && slot < kMetaSlots);
  return user_meta_[slot];
}

void Pager::set_meta(int slot, std::uint64_t value) {
  MSSG_CHECK(slot >= 0 && slot < kMetaSlots);
  user_meta_[slot] = value;
  header_dirty_ = true;
}

void Pager::flush() {
  cache_.flush();
  if (header_dirty_) store_header();
}

}  // namespace mssg
