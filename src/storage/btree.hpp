// Disk-based B+tree with variable-length values and overflow chains.
//
// This is the access structure behind KVStoreDB (the BerkeleyDB stand-in)
// and the secondary index of RelationalDB (the MySQL stand-in).  Keys are
// a (primary, secondary) pair — in the GraphDB backends that is
// (vertex GID, adjacency chunk number), matching the thesis' chunked-BLOB
// schema (Figure 4.3).
//
// Layout (page size P, from the Pager):
//   leaf:     [type u8][pad u8][count u16][heap_start u16][pad u16]
//             [next_leaf u64] then `count` sorted 16-byte slots
//             {primary u64, secondary u32, cell_off u16, cell_len u16};
//             cells grow downward from the page end.  cell_len == 0xFFFF
//             marks an overflow cell: {total_len u64, head_page u64}.
//   internal: [type u8][pad u8][count u16][pad u32][child0 u64] then
//             `count` 20-byte entries {primary u64, secondary u32,
//             child u64}; child[i] holds keys < key[i] <= child[i+1].
//   overflow: [type u8][pad3][used u32][next u64][payload ...]
//
// Deletions do not rebalance (no page merging); freed overflow pages are
// recycled through the pager free list.  That matches the
// insert/update/lookup-heavy GraphDB workload and keeps the structure
// simple — BerkeleyDB btrees behave similarly under this access pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "storage/pager.hpp"

namespace mssg {

struct BTreeKey {
  std::uint64_t primary = 0;
  std::uint32_t secondary = 0;

  friend constexpr bool operator==(const BTreeKey&, const BTreeKey&) = default;
  friend constexpr auto operator<=>(const BTreeKey&, const BTreeKey&) = default;
};

class BTree {
 public:
  /// The tree persists its root and entry count in pager meta slots
  /// [meta_base, meta_base+1].
  explicit BTree(Pager& pager, int meta_base = 0);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or replaces.  Returns true if the key already existed.
  bool put(const BTreeKey& key, std::span<const std::byte> value);

  /// Returns the value, or nullopt if absent.
  [[nodiscard]] std::optional<std::vector<std::byte>> get(
      const BTreeKey& key) const;

  [[nodiscard]] bool contains(const BTreeKey& key) const;

  /// Removes the key.  Returns true if it was present.
  bool erase(const BTreeKey& key);

  /// Visits entries with lo <= key <= hi in key order.  The visitor
  /// returns false to stop early.
  void scan(const BTreeKey& lo, const BTreeKey& hi,
            const std::function<bool(const BTreeKey&,
                                     std::span<const std::byte>)>& visit) const;

  /// Number of live entries.
  [[nodiscard]] std::uint64_t size() const;

  /// Height of the tree (0 for empty, 1 for a lone leaf).
  [[nodiscard]] int height() const;

  /// The leaf page that does / would contain `key`, or kInvalidPage for
  /// an empty tree.  Descends internal pages only — the leaf itself is
  /// never pinned, so callers can hand the page to async read-ahead
  /// without faulting it into the cache first.
  [[nodiscard]] PageId leaf_page(const BTreeKey& key) const;

  void flush() { pager_.flush(); }

 private:
  struct SplitResult {
    BTreeKey separator;
    PageId right_page;
  };

  [[nodiscard]] std::size_t inline_max() const;
  [[nodiscard]] PageId root() const { return pager_.meta(meta_base_); }
  void set_root(PageId page) { pager_.set_meta(meta_base_, page); }
  void bump_size(std::int64_t delta);

  std::optional<SplitResult> insert_recursive(PageId page, const BTreeKey& key,
                                              std::span<const std::byte> value,
                                              bool& replaced);
  std::optional<SplitResult> leaf_insert(PageId page, const BTreeKey& key,
                                         std::span<const std::byte> value,
                                         bool& replaced);

  /// Writes a value as an overflow chain; returns the head page.
  PageId write_overflow(std::span<const std::byte> value);
  void free_overflow(PageId head);
  [[nodiscard]] std::vector<std::byte> read_overflow(PageId head,
                                                     std::uint64_t len) const;

  /// Locates the leaf that does / would contain `key`.
  [[nodiscard]] PageId find_leaf(const BTreeKey& key) const;

  Pager& pager_;
  int meta_base_;
};

}  // namespace mssg
