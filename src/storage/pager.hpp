// Fixed-size-page file manager with a free list, backing the B+tree and
// the slotted heap file.  Page 0 is the header (magic, geometry, free
// list head, and a few user metadata slots for e.g. the B+tree root).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <unordered_set>

#include "storage/block_cache.hpp"
#include "storage/file.hpp"

namespace mssg {

using PageId = std::uint64_t;
inline constexpr PageId kInvalidPage = 0;  // page 0 is the header

class Pager {
 public:
  /// Opens (or creates) a paged file.  `cache_capacity_bytes` sizes the
  /// page cache; zero means write-through (no caching).  `async_io`
  /// attaches the background IoEngine for prefetch() read-ahead and
  /// write-behind eviction.
  Pager(const std::filesystem::path& path, std::size_t page_size,
        std::size_t cache_capacity_bytes, IoStats* stats = nullptr,
        bool async_io = false);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;
  ~Pager();

  [[nodiscard]] std::size_t page_size() const { return page_size_; }
  [[nodiscard]] PageId page_count() const { return page_count_; }

  /// Allocates a page (recycling freed pages first).  Contents are
  /// zeroed.  Throws StorageError if the on-disk free list is corrupt
  /// (a page appearing twice would hand the same page to two owners).
  PageId allocate();

  /// Returns a page to the free list.  Throws StorageError on a double
  /// free or when the page is still pinned — either would corrupt a
  /// live page once the slot is recycled.
  void free_page(PageId page);

  /// Pins a page in the cache.
  BlockHandle pin(PageId page);

  /// Issues sorted async read-ahead for the given pages (no-op without
  /// async I/O — callers warm synchronously in that case).
  void prefetch(std::span<const PageId> pages);

  [[nodiscard]] bool async_enabled() const { return cache_.async_enabled(); }

  /// Engine-internal metrics (see BlockCache::async_metrics).
  [[nodiscard]] MetricsSnapshot async_metrics() const {
    return cache_.async_metrics();
  }

  /// User metadata slots persisted in the header (8 available).
  static constexpr int kMetaSlots = 8;
  [[nodiscard]] std::uint64_t meta(int slot) const;
  void set_meta(int slot, std::uint64_t value);

  /// Writes back all dirty pages and the header.
  void flush();

  [[nodiscard]] IoStats* stats() const { return stats_; }

 private:
  struct Header {
    std::uint64_t magic;
    std::uint64_t page_size;
    std::uint64_t page_count;
    std::uint64_t free_head;
    std::uint64_t user[kMetaSlots];
  };
  static constexpr std::uint64_t kMagic = 0x4d53534750414745ull;  // "MSSGPAGE"

  void load_header();
  void store_header();

  std::size_t page_size_;
  File file_;
  IoStats* stats_;
  BlockCache cache_;
  std::uint16_t store_id_;
  PageId page_count_ = 1;  // header occupies page 0
  PageId free_head_ = kInvalidPage;
  std::unordered_set<PageId> free_set_;  // mirror of the free list, for
                                         // double-free / cycle detection
  std::uint64_t user_meta_[kMetaSlots] = {};
  bool header_dirty_ = false;
};

}  // namespace mssg
