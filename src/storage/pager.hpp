// Fixed-size-page file manager with a free list, backing the B+tree and
// the slotted heap file.  Page 0 is the header (magic, geometry, free
// list head, and a few user metadata slots for e.g. the B+tree root).
//
// Every page carries a CRC32C trailer (storage/checksum.hpp): the cache
// seals pages on write and verifies them on read, so torn writes and bit
// rot surface as StorageError instead of silent misreads.  page_size()
// reports the *usable* bytes (physical page minus trailer) — that is the
// payload geometry the B+tree and heap file lay out against.
//
// With `journal` enabled the pager keeps an undo+redo write-ahead
// journal (storage/journal.hpp) beside the file.  Pre-images are logged
// before any in-place overwrite between flushes (eviction write-backs
// included), and flush() double-writes dirty pages into the redo log
// before updating them in place — so reopening after a crash at ANY
// write/sync always recovers the last flush()-committed state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "storage/block_cache.hpp"
#include "storage/file.hpp"
#include "storage/journal.hpp"

namespace mssg {

using PageId = std::uint64_t;
inline constexpr PageId kInvalidPage = 0;  // page 0 is the header

class Pager {
 public:
  /// Opens (or creates) a paged file.  `cache_capacity_bytes` sizes the
  /// page cache; zero means write-through (no caching).  `async_io`
  /// attaches the background IoEngine (with `io_workers` lanes) for
  /// prefetch() read-ahead and write-behind eviction.  `journal` arms
  /// crash-safe flushes (see file comment); recovery, if needed, runs
  /// here before the header loads.  `journal_sync_interval` is the
  /// group-commit knob: every n-th flush() commits durably, the ones in
  /// between batch their redo records into the group (1 = every flush
  /// commits, the classic behavior).
  Pager(const std::filesystem::path& path, std::size_t page_size,
        std::size_t cache_capacity_bytes, IoStats* stats = nullptr,
        bool async_io = false, bool journal = false,
        std::size_t io_workers = 1, std::uint32_t journal_sync_interval = 1);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Last-resort flush (callers should flush() explicitly); never throws
  /// — a store failing here loses what a crashed process would have.
  ~Pager();

  /// Usable bytes per page — physical page size minus the checksum
  /// trailer.  This is the size of every pinned span.
  [[nodiscard]] std::size_t page_size() const { return usable_; }
  [[nodiscard]] PageId page_count() const { return page_count_; }

  /// Allocates a page (recycling freed pages first).  Contents are
  /// zeroed.  Throws StorageError if the on-disk free list is corrupt
  /// (a page appearing twice would hand the same page to two owners).
  PageId allocate();

  /// Returns a page to the free list.  Throws StorageError on a double
  /// free or when the page is still pinned — either would corrupt a
  /// live page once the slot is recycled.
  void free_page(PageId page);

  /// Pins a page in the cache.
  BlockHandle pin(PageId page);

  /// Issues sorted async read-ahead for the given pages (no-op without
  /// async I/O — callers warm synchronously in that case).
  void prefetch(std::span<const PageId> pages);

  [[nodiscard]] bool async_enabled() const { return cache_.async_enabled(); }

  /// Forwards BlockCache::set_miss_penalty_us (simulated seek latency).
  void set_miss_penalty_us(std::uint32_t us) {
    cache_.set_miss_penalty_us(us);
  }

  /// Engine-internal metrics (see BlockCache::async_metrics).
  [[nodiscard]] MetricsSnapshot async_metrics() const {
    return cache_.async_metrics();
  }

  /// Evicts the backing file from the OS page cache (cold benches) —
  /// see File::drop_page_cache.  Best-effort, not counted in IoStats.
  void drop_page_cache() const { file_.drop_page_cache(); }

  /// User metadata slots persisted in the header (8 available).
  static constexpr int kMetaSlots = 8;
  [[nodiscard]] std::uint64_t meta(int slot) const;
  void set_meta(int slot, std::uint64_t value);

  /// Writes back all dirty pages and the header.  With journaling:
  /// redo-log everything, commit, then update in place — the order that
  /// makes the flush atomic under crashes.  With a sync_interval > 1
  /// only every n-th flush commits; the others defer into the group
  /// (durability lands at the next boundary — or at destruction, which
  /// forces one).  `force_commit` closes a pending group immediately.
  void flush(bool force_commit = false);

  [[nodiscard]] IoStats* stats() const { return stats_; }
  [[nodiscard]] bool journaled() const { return journal_ != nullptr; }

  /// True while deferred group-commit flushes await their boundary: the
  /// last flush() was NOT a committed (crash-recoverable) state.  The
  /// snapshot layer checks this so epochs only advance at real commits.
  [[nodiscard]] bool group_pending() const {
    return journal_ != nullptr && journal_->group_pending();
  }

 private:
  struct Header {
    std::uint64_t magic;
    std::uint64_t page_size;
    std::uint64_t page_count;
    std::uint64_t free_head;
    std::uint64_t user[kMetaSlots];
  };
  static constexpr std::uint64_t kMagic = 0x4d53534750414745ull;  // "MSSGPAGE"

  void load_header();
  void store_header();
  [[nodiscard]] std::vector<std::byte> build_header_page() const;
  /// Counts + throws on a checksum-failed page read.
  void verify_page(std::uint64_t block, std::span<const std::byte> page) const;
  /// Captures a pre-image of `block` before its first in-place overwrite
  /// this epoch (no-op outside journal mode or during flush's post-commit
  /// phase).
  void capture_undo(std::uint64_t block);
  /// Replays any pending journal epoch onto the file (ctor: both
  /// directions; flush start: committed roll-forward only).
  void recover(bool allow_rollback);

  std::size_t page_size_;  // physical (on-disk) page size
  std::size_t usable_;     // payload bytes per page (page_size_ - trailer)
  File file_;
  IoStats* stats_;
  // journal_ is declared before cache_ so it outlives it: the cache's
  // destructor writes back dirty pages through the writer callback,
  // which captures undo pre-images into the journal.
  std::unique_ptr<WriteJournal> journal_;
  BlockCache cache_;
  std::uint16_t store_id_;
  PageId page_count_ = 1;  // header occupies page 0
  PageId free_head_ = kInvalidPage;
  std::unordered_set<PageId> free_set_;  // mirror of the free list, for
                                         // double-free / cycle detection
  std::uint64_t user_meta_[kMetaSlots] = {};
  bool header_dirty_ = false;
  bool in_flush_ = false;  // post-commit in-place phase: skip undo capture
};

}  // namespace mssg
