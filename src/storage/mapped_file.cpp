#include "storage/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace mssg {

namespace {

[[noreturn]] void throw_errno(const std::string& op,
                              const std::filesystem::path& path) {
  throw StorageError(op + " failed for " + path.string() + ": " +
                     std::strerror(errno));
}

std::uint64_t page_size() {
  static const std::uint64_t size =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

int to_madvise(MappedFile::Advice advice) {
  switch (advice) {
    case MappedFile::Advice::kSequential: return MADV_SEQUENTIAL;
    case MappedFile::Advice::kWillNeed: return MADV_WILLNEED;
    case MappedFile::Advice::kDontNeed: return MADV_DONTNEED;
    case MappedFile::Advice::kNormal: break;
  }
  return MADV_NORMAL;
}

}  // namespace

// ---- MappedFile ------------------------------------------------------------

MappedFile::MappedFile(MappedFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() {
  if (base_ != nullptr) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
  base_ = nullptr;
  size_ = 0;
  fd_ = -1;
  path_.clear();
}

MappedFile MappedFile::map_readonly(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(android-cloexec-open)
  if (fd < 0) throw_errno("open(mmap)", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat(mmap)", path);
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  void* base = nullptr;
  if (size != 0) {
    // MAP_SHARED (not PRIVATE): sealed files are never written while
    // mapped, and SHARED keeps the mapping coherent with the page cache
    // the pread path populates — one physical copy of every block.
    base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      throw_errno("mmap", path);
    }
  }
  return MappedFile(fd, base, size, path.string());
}

void MappedFile::advise(Advice advice) const { advise(0, size_, advice); }

void MappedFile::advise(std::uint64_t offset, std::uint64_t length,
                        Advice advice) const {
  if (base_ == nullptr || length == 0 || offset >= size_) return;
  const std::uint64_t ps = page_size();
  const std::uint64_t begin = offset / ps * ps;
  const std::uint64_t end = std::min(size_, offset + length);
  // Best-effort: an madvise failure only costs the hint.
  (void)::madvise(static_cast<std::byte*>(base_) + begin, end - begin,
                  to_madvise(advice));
}

MappedFile::Residency MappedFile::residency(std::size_t max_pages) const {
  Residency result;
  if (base_ == nullptr || max_pages == 0) return result;
  const std::uint64_t ps = page_size();
  const std::uint64_t pages = (size_ + ps - 1) / ps;
  const std::uint64_t stride = std::max<std::uint64_t>(1, pages / max_pages);
  unsigned char vec = 0;
  for (std::uint64_t p = 0; p < pages; p += stride) {
    if (::mincore(static_cast<std::byte*>(base_) + p * ps, 1, &vec) != 0) {
      return result;  // unsupported / raced a truncation: report partial
    }
    ++result.sampled_pages;
    if ((vec & 1u) != 0) ++result.resident_pages;
  }
  return result;
}

// ---- MappedBlockSource -----------------------------------------------------

MappedBlockSource::MappedBlockSource(std::uint64_t block_bytes,
                                     std::uint64_t blocks_per_file,
                                     Verifier verifier, IoStats* stats)
    : block_bytes_(block_bytes),
      blocks_per_file_(blocks_per_file),
      verifier_(std::move(verifier)),
      stats_(stats) {
  MSSG_CHECK(block_bytes_ > 0 && blocks_per_file_ > 0);
}

void MappedBlockSource::attach(std::uint64_t file_index, MappedFile file) {
  if (file_index >= slots_.size()) slots_.resize(file_index + 1);
  Slot& slot = slots_[file_index];
  const std::size_t words = (blocks_per_file_ + 63) / 64;
  slot.verified = std::make_unique<std::atomic<std::uint64_t>[]>(words);
  for (std::size_t w = 0; w < words; ++w) {
    slot.verified[w].store(0, std::memory_order_relaxed);
  }
  slot.file = std::move(file);
}

std::span<const std::byte> MappedBlockSource::block(
    std::uint64_t index) const {
  const std::uint64_t file_index = index / blocks_per_file_;
  const std::uint64_t rel = index % blocks_per_file_;
  if (file_index >= slots_.size()) return {};
  const Slot& slot = slots_[file_index];
  if (!slot.file.valid()) return {};
  const std::uint64_t offset = rel * block_bytes_;
  if (offset + block_bytes_ > slot.file.size()) {
    // Sparse tail the pread path would zero-fill — not representable as
    // a view; the caller falls back.
    return {};
  }
  const auto view = slot.file.bytes().subspan(offset, block_bytes_);
  const std::uint64_t bit = std::uint64_t{1} << (rel % 64);
  std::atomic<std::uint64_t>& word = slot.verified[rel / 64];
  if ((word.load(std::memory_order_acquire) & bit) == 0) {
    // First touch: pay the checksum now, exactly once.  Concurrent first
    // touches may both verify — benign, the bit is only set on success.
    if (verifier_) {
      verifier_(index, view);
      if (stats_ != nullptr) ++stats_->mmap_lazy_verifies;
    }
    word.fetch_or(bit, std::memory_order_release);
  }
  return view;
}

void MappedBlockSource::willneed(
    std::span<const std::uint64_t> blocks) const {
  for (const std::uint64_t index : blocks) {
    const std::uint64_t file_index = index / blocks_per_file_;
    if (file_index >= slots_.size()) continue;
    const Slot& slot = slots_[file_index];
    if (!slot.file.valid()) continue;
    slot.file.advise((index % blocks_per_file_) * block_bytes_, block_bytes_,
                     MappedFile::Advice::kWillNeed);
  }
}

void MappedBlockSource::advise_sequential() const {
  for (const Slot& slot : slots_) {
    if (slot.file.valid()) slot.file.advise(MappedFile::Advice::kSequential);
  }
}

std::uint64_t MappedBlockSource::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.file.size();
  return total;
}

std::uint64_t MappedBlockSource::files_mapped() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot.file.valid()) ++total;
  }
  return total;
}

MappedFile::Residency MappedBlockSource::residency() const {
  MappedFile::Residency total;
  for (const Slot& slot : slots_) {
    if (slot.file.valid()) total += slot.file.residency();
  }
  return total;
}

}  // namespace mssg
