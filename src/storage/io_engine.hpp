// Background I/O engine — the asynchronous disk path of one simulated
// cluster node.  FlashGraph-style: callers batch block requests, the
// engine sorts each batch by (file, offset) so the disk sees ascending
// offsets ("sorting the pre-fetch disk accesses by file offsets to
// reduce the seek overhead", §4.2), and N worker threads issue them
// while the owning thread keeps computing.  Two request kinds:
//
//  - read-ahead: the block cache submits the next fringe's blocks and
//    adopts the filled buffers later (completion handoff);
//  - write-behind: the block cache hands over evicted-dirty payloads so
//    eviction never blocks the caller's critical path.
//
// Parallelism model: each worker owns one *lane* (a FIFO of sub-batches)
// and submit() routes every request by hash(file) → lane.  All requests
// against one file therefore execute on one worker in submission order —
// two writes to the same offset still land in the order they were
// submitted — while requests against different files proceed in
// parallel.  Within a sub-batch, adjacent requests (same file, same
// kind, touching byte ranges) are fused into a single vectored
// preadv/pwritev ("merging I/O requests into larger ones"), counted in
// IoStats::vectored_merges.
//
// Threading contract (the reason the rest of the storage layer can stay
// "single-threaded by design"): workers touch ONLY the File objects
// named in requests, via the explicit-stats read/write overloads
// (positional I/O on a shared fd is thread-safe).  All store metadata —
// cache maps, grDB level bitmaps, file-handle tables — is resolved by
// the owning thread at submit time.  Completions, I/O accounting, and
// the engine's own metrics flow back to the owning thread through
// poll_completions()/metrics(); the queue mutex orders the handoff.
//
// drain() (and the destructor) block until every submitted request has
// executed, so flush-time durability is preserved: nothing the engine
// accepted is lost.  Errors still unpolled at destruction are NOT lost
// silently: each is logged and counted in IoStats::engine_dropped_errors
// (and debug builds assert — destroying an engine without polling a
// failed write is a caller bug).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "storage/file.hpp"
#include "storage/io_stats.hpp"

namespace mssg {

/// One block-sized request.  `key` is an opaque caller tag (the block
/// cache stores its map key there) returned untouched with the
/// completion.  The File must outlive the request; drain before closing
/// or destroying the target file.
struct IoRequest {
  enum class Kind : std::uint8_t { kRead, kWrite };

  Kind kind = Kind::kRead;
  const File* file = nullptr;
  std::uint64_t offset = 0;
  std::vector<std::byte> buffer;  ///< read: destination; write: payload
  std::uint64_t key = 0;
  std::string error;  ///< non-empty if the worker's I/O threw; the
                      ///< completion then carries the failure back to
                      ///< the owning thread instead of killing the worker
};

struct IoEngineOptions {
  /// Worker threads (= lanes).  1 reproduces the original single-worker
  /// engine exactly (one lane, one FIFO).
  std::size_t workers = 1;
  /// Max requests fused into one vectored preadv/pwritev; 1 disables
  /// merging.  Kept well under IOV_MAX.
  std::size_t max_merge = 16;
  /// Where destructor-time accounting spills: worker stats (and the
  /// dropped-error count) of completions nobody polled are folded here
  /// instead of vanishing.  May be null.  Must outlive the engine.
  IoStats* sink = nullptr;
};

class IoEngine {
 public:
  /// Starts the worker threads.
  explicit IoEngine(IoEngineOptions options = {});

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  /// Drains all queued requests (write-behind durability), then joins
  /// the workers.  Unpolled completions are discarded — except their
  /// accounting and errors, which spill into `options.sink` (see
  /// IoEngineOptions); debug builds assert that no *failed* request is
  /// dropped this way.
  ~IoEngine();

  /// Queues a batch.  The batch is stably sorted by (file, offset),
  /// then split into per-lane sub-batches by hash(file) — so requests
  /// against one file keep submission order (same-offset writes
  /// included) while different files fan out across workers.  One
  /// TraceSpan is recorded per executed sub-batch.
  void submit(std::vector<IoRequest> batch);

  /// True when poll_completions() would return something (lock-free).
  [[nodiscard]] bool has_completions() const {
    return completions_ready_.load(std::memory_order_acquire) != 0;
  }

  /// Takes every finished request, in execution order, and folds the
  /// workers' I/O accounting into `stats` (dropped when null).  Owning
  /// thread only.
  std::vector<IoRequest> poll_completions(IoStats* stats);

  /// Blocks until the engine is idle, or at least one batch completes
  /// after the call began (whichever first).  The progress condition is
  /// a completion *sequence number*, not "completed_ non-empty": if a
  /// concurrent poller takes the completion between the worker's notify
  /// and this thread's wake-up, the call still returns instead of
  /// waiting on unrelated future work (the lost-wakeup window the
  /// multi-worker engine would otherwise widen).
  void wait_for_completion();

  /// Blocks until every submitted request has executed.  Completions
  /// still need polling afterwards.  Logically const: observes the queue
  /// without altering any request.
  void drain() const;

  /// Waits for quiescence and snapshots the engine's internal metrics
  /// (monotonic, no reset) WITHOUT releasing the lock in between — a
  /// concurrent submit() cannot wake a worker into the registry
  /// mid-snapshot.  Includes "span.io.engine.batch" (+ duration
  /// histogram) per sub-batch, the "io.engine.queue_depth" /
  /// "io.engine.batch_requests" histograms, and the "io.engine.lanes"
  /// counter.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Sub-batches not yet picked up by a worker, across all lanes
  /// (approximate; for tests).
  [[nodiscard]] std::size_t queue_depth() const;

  [[nodiscard]] std::size_t workers() const { return lanes_.size(); }

 private:
  // Each worker owns one lane: a FIFO of sub-batches plus its wake-up
  // signal.  The queues themselves are guarded by the engine-wide
  // mutex_ (disk time dominates, so one mutex sees no contention in
  // practice, and it keeps the quiescence predicates trivially correct).
  struct Lane {
    std::deque<std::vector<IoRequest>> queue;
    std::condition_variable work_cv;
    std::thread worker;
  };

  void worker_loop(Lane& lane);
  /// Executes one sub-batch (sorted by file/offset), fusing adjacent
  /// same-file same-kind runs into vectored ops.  Runs without the
  /// lock; all accounting goes to `local`.
  void execute_batch(std::vector<IoRequest>& batch, IoStats& local) const;

  IoEngineOptions options_;
  mutable std::mutex mutex_;
  // mutable like the mutex: drain()/metrics() are logically const but
  // wait here.
  mutable std::condition_variable done_cv_;  ///< completion / idleness
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<IoRequest> completed_;
  IoStats worker_stats_;  ///< worker accounting awaiting poll (guarded)
  // Written by workers only while holding mutex_ and read by the owning
  // thread only at quiescence while still holding mutex_ — see
  // metrics().
  MetricsRegistry metrics_;
  std::size_t queued_batches_ = 0;  ///< sub-batches across all lanes
  std::size_t busy_workers_ = 0;
  std::uint64_t completion_seq_ = 0;  ///< bumped per executed sub-batch
  bool stop_ = false;
  std::atomic<std::uint64_t> completions_ready_{0};
};

}  // namespace mssg
