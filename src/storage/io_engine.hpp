// Background I/O engine — the asynchronous disk path of one simulated
// cluster node.  FlashGraph-style: callers batch block requests, the
// engine sorts each batch by (file, offset) so the disk sees ascending
// offsets ("sorting the pre-fetch disk accesses by file offsets to
// reduce the seek overhead", §4.2), and a single worker thread issues
// them while the owning thread keeps computing.  Two request kinds:
//
//  - read-ahead: the block cache submits the next fringe's blocks and
//    adopts the filled buffers later (completion handoff);
//  - write-behind: the block cache hands over evicted-dirty payloads so
//    eviction never blocks the caller's critical path.
//
// Threading contract (the reason the rest of the storage layer can stay
// "single-threaded by design"): the worker touches ONLY the File objects
// named in requests, via the explicit-stats read_at/write_at overloads
// (positional I/O on a shared fd is thread-safe).  All store metadata —
// cache maps, grDB level bitmaps, file-handle tables — is resolved by
// the owning thread at submit time.  Completions, I/O accounting, and
// the engine's own metrics flow back to the owning thread through
// poll_completions()/metrics(); the queue mutex orders the handoff.
//
// drain() (and the destructor) block until every submitted request has
// executed, so flush-time durability is preserved: nothing the engine
// accepted is lost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "storage/file.hpp"
#include "storage/io_stats.hpp"

namespace mssg {

/// One block-sized request.  `key` is an opaque caller tag (the block
/// cache stores its map key there) returned untouched with the
/// completion.  The File must outlive the request; drain before closing
/// or destroying the target file.
struct IoRequest {
  enum class Kind : std::uint8_t { kRead, kWrite };

  Kind kind = Kind::kRead;
  const File* file = nullptr;
  std::uint64_t offset = 0;
  std::vector<std::byte> buffer;  ///< read: destination; write: payload
  std::uint64_t key = 0;
  std::string error;  ///< non-empty if the worker's I/O threw; the
                      ///< completion then carries the failure back to
                      ///< the owning thread instead of killing the worker
};

class IoEngine {
 public:
  /// Starts the worker thread.
  IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  /// Drains all queued requests (write-behind durability), then joins
  /// the worker.  Unpolled completions are discarded.
  ~IoEngine();

  /// Queues a batch.  The batch is stably sorted by (file, offset)
  /// before issue, so same-offset writes keep submission order.  Batches
  /// execute in submission order; one TraceSpan is recorded per batch.
  void submit(std::vector<IoRequest> batch);

  /// True when poll_completions() would return something (lock-free).
  [[nodiscard]] bool has_completions() const {
    return completions_ready_.load(std::memory_order_acquire) != 0;
  }

  /// Takes every finished request, in execution order, and folds the
  /// worker's I/O accounting into `stats` (dropped when null).  Owning
  /// thread only.
  std::vector<IoRequest> poll_completions(IoStats* stats);

  /// Blocks until at least one unpolled completion exists or the engine
  /// is idle (whichever first).
  void wait_for_completion();

  /// Blocks until every submitted request has executed.  Completions
  /// still need polling afterwards.  Logically const: observes the queue
  /// without altering any request.
  void drain() const;

  /// Drains, then snapshots the engine's internal metrics (monotonic, no
  /// reset): "span.io.engine.batch" (+ duration histogram) per batch and
  /// the "io.engine.queue_depth" / "io.engine.batch_requests" histograms.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Batches not yet picked up by the worker (approximate; for tests).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes the worker
  // mutable like the mutex: drain() is logically const but waits here.
  mutable std::condition_variable done_cv_;  ///< completion / idleness
  std::deque<std::vector<IoRequest>> queue_;
  std::vector<IoRequest> completed_;
  IoStats worker_stats_;  ///< worker accounting awaiting poll (guarded)
  // Touched by the worker between batches and by the owning thread only
  // after drain() — the mutex handoff on busy_ orders the accesses.
  MetricsRegistry metrics_;
  bool busy_ = false;
  bool stop_ = false;
  std::atomic<std::uint64_t> completions_ready_{0};
  std::thread worker_;
};

}  // namespace mssg
