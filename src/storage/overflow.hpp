// Overflow chains: values too large for their home page are stored in a
// linked list of dedicated pages.  Shared by the B+tree (large cells) and
// the heap file (off-page rows, the way InnoDB stores large BLOBs).
//
// Page layout: [type u8 (=3)][pad3][used u32][next u64][payload ...]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "storage/pager.hpp"

namespace mssg::overflow {

inline constexpr std::uint8_t kPageType = 3;
inline constexpr std::size_t kHeader = 16;

/// Writes `value` as a chain; returns the head page (always allocates at
/// least one page, even for an empty value).
PageId write_chain(Pager& pager, std::span<const std::byte> value);

/// Reads `len` bytes starting at `head`.
std::vector<std::byte> read_chain(const Pager& pager, PageId head,
                                  std::uint64_t len);

/// Returns every page of the chain to the pager free list.
void free_chain(Pager& pager, PageId head);

}  // namespace mssg::overflow
