#include "storage/journal.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32c.hpp"
#include "common/error.hpp"

namespace mssg {

namespace {

constexpr std::uint64_t kMagic = 0x4D5353474A524E4Cull;  // "MSSGJRNL"
constexpr std::uint64_t kHeaderBytes = 8;
constexpr std::uint64_t kRecordOverhead = 8 + 8 + 4;  // tag + size + crc
// Sanity bound on one record's payload when parsing: journals hold dirty
// pages and metadata blobs, never gigabytes.  Anything larger is garbage
// (and would otherwise drive a huge allocation off a corrupt length).
constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 30;

void put_u64(std::byte* dst, std::uint64_t v) { std::memcpy(dst, &v, 8); }

std::uint64_t get_u64(const std::byte* src) {
  std::uint64_t v = 0;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

WriteJournal::WriteJournal(const std::filesystem::path& base, IoStats* stats,
                           std::uint32_t sync_interval)
    : undo_(File::open(base.string() + ".undo", stats)),
      redo_(File::open(base.string() + ".redo", stats)),
      stats_(stats),
      sync_interval_(sync_interval == 0 ? 1 : sync_interval) {
  undo_bytes_ = init_file(undo_);
  redo_bytes_ = init_file(redo_);
}

std::uint64_t WriteJournal::init_file(File& file) {
  const std::uint64_t size = file.size();
  if (size >= kHeaderBytes) return size;  // may hold records — keep them
  std::byte magic[kHeaderBytes];
  put_u64(magic, kMagic);
  file.write_at(0, magic);
  return kHeaderBytes;
}

void WriteJournal::append(File& file, std::uint64_t& bytes, std::uint64_t tag,
                          std::span<const std::byte> payload) {
  std::vector<std::byte> buf(16 + payload.size() + 4);
  put_u64(buf.data(), tag);
  put_u64(buf.data() + 8, payload.size());
  std::copy(payload.begin(), payload.end(), buf.begin() + 16);
  const std::uint32_t crc =
      crc32c(std::span<const std::byte>(buf.data(), 16 + payload.size()));
  std::memcpy(buf.data() + 16 + payload.size(), &crc, 4);
  file.write_at(bytes, buf);
  bytes += buf.size();
  if (stats_ != nullptr) ++stats_->journal_records;
}

void WriteJournal::undo_record(std::uint64_t tag,
                               std::span<const std::byte> payload) {
  MSSG_CHECK(tag != kCommitTag);
  std::lock_guard lk(mu_);
  if (!undo_logged_.insert(tag).second) return;
  append(undo_, undo_bytes_, tag, payload);
  // Durability is the caller's barrier: a pre-image must be fdatasync'd
  // (undo_barrier) before the overwrite it protects, or a crash could
  // lose both the old and the new version of the block — but batching
  // many records under one barrier is safe and much cheaper.
  undo_dirty_ = true;
}

void WriteJournal::undo_barrier() {
  std::lock_guard lk(mu_);
  if (!undo_dirty_) return;
  undo_.sync();
  undo_dirty_ = false;
}

void WriteJournal::redo_begin() {
  std::lock_guard lk(mu_);
  if (deferred_flushes_ != 0) return;  // group open: append to it
  redo_.truncate(kHeaderBytes);
  redo_bytes_ = kHeaderBytes;
  redo_count_ = 0;
}

void WriteJournal::redo_defer() {
  std::lock_guard lk(mu_);
  ++deferred_flushes_;
  if (stats_ != nullptr) ++stats_->journal_deferred_flushes;
}

void WriteJournal::redo_record(std::uint64_t tag,
                               std::span<const std::byte> payload) {
  MSSG_CHECK(tag != kCommitTag);
  std::lock_guard lk(mu_);
  append(redo_, redo_bytes_, tag, payload);
  ++redo_count_;
}

void WriteJournal::redo_commit() {
  std::lock_guard lk(mu_);
  // First sync: the records themselves — including any deferred
  // flushes' records, synced here for the first time.  Second sync: the
  // commit record, which only means anything once everything before it
  // is durable.  The count covers the WHOLE group, so a torn tail from
  // any deferred flush invalidates the commit.
  redo_.sync();
  std::byte count[8];
  put_u64(count, redo_count_);
  append(redo_, redo_bytes_, kCommitTag, count);
  redo_.sync();
  deferred_flushes_ = 0;
  if (stats_ != nullptr) ++stats_->journal_group_commits;
}

WriteJournal::Parsed WriteJournal::parse(const File& file) {
  Parsed out;
  const std::uint64_t size = file.size();
  if (size < kHeaderBytes) return out;
  std::vector<std::byte> buf(size);
  file.read_at(0, buf, nullptr);
  if (get_u64(buf.data()) != kMagic) return out;

  std::uint64_t pos = kHeaderBytes;
  while (pos + kRecordOverhead <= size) {
    const std::uint64_t tag = get_u64(buf.data() + pos);
    const std::uint64_t len = get_u64(buf.data() + pos + 8);
    if (len > kMaxPayload || len > size - pos - kRecordOverhead) break;
    std::uint32_t stored = 0;
    std::memcpy(&stored, buf.data() + pos + 16 + len, 4);
    const std::uint32_t actual =
        crc32c(std::span<const std::byte>(buf.data() + pos, 16 + len));
    if (stored != actual) break;  // torn tail — everything before it is good
    if (tag == kCommitTag) {
      out.committed = len == 8 && get_u64(buf.data() + pos + 16) ==
                                      static_cast<std::uint64_t>(
                                          out.records.size());
      break;  // the commit record is terminal by construction
    }
    Record rec;
    rec.tag = tag;
    rec.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(pos + 16),
                       buf.begin() + static_cast<std::ptrdiff_t>(pos + 16 + len));
    out.records.push_back(std::move(rec));
    pos += kRecordOverhead + len;
  }
  return out;
}

WriteJournal::Recovery WriteJournal::plan_recovery() {
  std::lock_guard lk(mu_);
  Recovery out;
  Parsed redo = parse(redo_);
  if (redo.committed) {
    out.action = Action::kRollForward;
    out.records = std::move(redo.records);
  } else {
    Parsed undo = parse(undo_);
    if (!undo.records.empty()) {
      out.action = Action::kRollBack;
      std::reverse(undo.records.begin(), undo.records.end());
      out.records = std::move(undo.records);
    }
  }
  if (stats_ != nullptr) stats_->journal_replays += out.records.size();
  return out;
}

void WriteJournal::trim() {
  std::lock_guard lk(mu_);
  // Undo first: dying between the two truncates leaves a committed redo,
  // whose roll-forward is idempotent.  The reverse order could leave only
  // the undo log and roll back a committed epoch.
  undo_.truncate(kHeaderBytes);
  undo_.sync();
  undo_bytes_ = kHeaderBytes;
  undo_logged_.clear();
  undo_dirty_ = false;
  redo_.truncate(kHeaderBytes);
  redo_.sync();
  redo_bytes_ = kHeaderBytes;
  redo_count_ = 0;
  deferred_flushes_ = 0;
}

}  // namespace mssg
