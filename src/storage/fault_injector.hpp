// Deterministic fault injection for the File layer.
//
// A process-global, thread-safe rule table consulted by every
// File::read_at / write_at / sync (gated on one relaxed atomic so the
// disabled hot path costs a single load).  Rules match by path substring
// and operation kind and trigger on the Nth matching operation:
//
//   kFail       the op throws StorageError
//   kTorn       a write lands only its first `tear_bytes` bytes, then
//               throws (the classic torn page)
//   kShortRead  a read delivers only `tear_bytes` real bytes; the rest
//               zero-fills (a truncated file)
//
// A rule with `kill` set makes the injector *sticky* once triggered:
// every later write/sync on the matching paths fails too, simulating a
// process that died at that point — the crash-recovery sweep arms one
// kill rule per successive operation index and reopens after each.
//
// Tests drive this directly; mssg_tool exposes it via --fault-spec.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mssg {

class FaultInjector {
 public:
  /// kMutate is a rule-side wildcard matching both writes and syncs —
  /// the crash sweep counts them with one shared index so every durable
  /// mutation is a kill point.
  enum class Op : std::uint8_t { kRead, kWrite, kSync, kMutate };
  enum class Kind : std::uint8_t { kFail, kTorn, kShortRead };

  struct Rule {
    std::string path_substring;  ///< matches any path containing this
    Op op = Op::kWrite;
    Kind kind = Kind::kFail;
    std::uint64_t nth = 0;         ///< trigger on the Nth matching op (0-based)
    std::uint64_t tear_bytes = 0;  ///< kTorn / kShortRead: bytes that land
    bool kill = false;             ///< sticky: all later writes/syncs fail
  };

  /// The process-wide injector (File consults exactly this instance).
  static FaultInjector& instance();

  void add_rule(Rule rule);

  /// Removes every rule and resets all counters (disarms the injector).
  void clear();

  /// Rules fired so far (a sticky rule counts once, at its trigger).
  [[nodiscard]] std::uint64_t triggered() const;

  /// Matching operations observed for a given op kind, across all rules.
  [[nodiscard]] std::uint64_t op_count(Op op) const;

  /// Parses and arms one rule from a spec string of comma-separated
  /// key=value pairs: "path=<substr>,op=read|write|sync,
  /// kind=fail|torn|short,nth=<N>[,bytes=<M>][,kill]".
  /// Throws UsageError on malformed specs.
  void parse_spec(const std::string& spec);

  /// Fast-path gate for File (true iff any rule is armed).
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Called by File before an operation of `size` bytes on `path`.
  /// Returns the number of bytes the operation may transfer (== size
  /// normally; smaller for a torn write / short read).  Throws
  /// StorageError for kFail and for any write/sync after a kill rule
  /// fired.
  std::uint64_t apply(Op op, const std::string& path, std::uint64_t size);

 private:
  struct Armed {
    Rule rule;
    std::uint64_t seen = 0;  ///< matching ops observed so far
    bool fired = false;
  };

  mutable std::mutex mutex_;
  std::vector<Armed> rules_;
  std::uint64_t triggered_ = 0;
  std::uint64_t op_counts_[4] = {};
  std::atomic<bool> enabled_{false};
};

}  // namespace mssg
