#include "storage/heap_file.hpp"

#include <cstring>

#include "common/error.hpp"
#include "storage/overflow.hpp"

namespace mssg {

namespace {

constexpr std::uint8_t kHeapPageType = 4;
constexpr std::size_t kHeader = 16;
constexpr std::size_t kSlotSize = 4;
constexpr std::uint16_t kDeadOff = 0xFFFF;
constexpr std::uint16_t kSpilledLen = 0xFFFF;
constexpr std::size_t kSpillCellSize = 16;

template <typename T>
T load(std::span<const std::byte> page, std::size_t off) {
  T v;
  std::memcpy(&v, page.data() + off, sizeof(T));
  return v;
}

template <typename T>
void store(std::span<std::byte> page, std::size_t off, T v) {
  std::memcpy(page.data() + off, &v, sizeof(T));
}

std::uint16_t slot_count(std::span<const std::byte> p) {
  return load<std::uint16_t>(p, 2);
}
void set_slot_count(std::span<std::byte> p, std::uint16_t n) {
  store<std::uint16_t>(p, 2, n);
}
std::uint16_t heap_start(std::span<const std::byte> p) {
  return load<std::uint16_t>(p, 4);
}
void set_heap_start(std::span<std::byte> p, std::uint16_t off) {
  store<std::uint16_t>(p, 4, off);
}
PageId next_page(std::span<const std::byte> p) { return load<PageId>(p, 8); }
void set_next_page(std::span<std::byte> p, PageId next) {
  store<PageId>(p, 8, next);
}

struct Slot {
  std::uint16_t off;
  std::uint16_t len;
};

Slot get_slot(std::span<const std::byte> p, std::size_t i) {
  const std::size_t base = kHeader + i * kSlotSize;
  return {load<std::uint16_t>(p, base), load<std::uint16_t>(p, base + 2)};
}

void set_slot(std::span<std::byte> p, std::size_t i, Slot s) {
  const std::size_t base = kHeader + i * kSlotSize;
  store<std::uint16_t>(p, base, s.off);
  store<std::uint16_t>(p, base + 2, s.len);
}

std::size_t cell_size(Slot s) {
  if (s.off == kDeadOff) return 0;
  return s.len == kSpilledLen ? kSpillCellSize : s.len;
}

std::size_t free_space(std::span<const std::byte> p) {
  return heap_start(p) - (kHeader + slot_count(p) * kSlotSize);
}

std::size_t live_bytes(std::span<const std::byte> p) {
  std::size_t total = 0;
  const std::size_t n = slot_count(p);
  for (std::size_t i = 0; i < n; ++i) total += cell_size(get_slot(p, i));
  return total;
}

void compact(std::span<std::byte> p) {
  const std::size_t n = slot_count(p);
  std::vector<std::byte> scratch(p.size());
  std::size_t heap = p.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto s = get_slot(p, i);
    const std::size_t len = cell_size(s);
    if (s.off == kDeadOff || len == 0) continue;
    heap -= len;
    std::memcpy(scratch.data() + heap, p.data() + s.off, len);
    s.off = static_cast<std::uint16_t>(heap);
    set_slot(p, i, s);
  }
  std::memcpy(p.data() + heap, scratch.data() + heap, p.size() - heap);
  set_heap_start(p, static_cast<std::uint16_t>(heap));
}

void init_heap_page(std::span<std::byte> p) {
  std::memset(p.data(), 0, p.size());
  store<std::uint8_t>(p, 0, kHeapPageType);
  set_slot_count(p, 0);
  set_heap_start(p, static_cast<std::uint16_t>(p.size()));
  set_next_page(p, kInvalidPage);
}

/// Writes a cell into the heap area (space must be available).
std::uint16_t write_cell(std::span<std::byte> p,
                         std::span<const std::byte> cell) {
  const std::size_t heap = heap_start(p) - cell.size();
  if (!cell.empty()) std::memcpy(p.data() + heap, cell.data(), cell.size());
  set_heap_start(p, static_cast<std::uint16_t>(heap));
  return static_cast<std::uint16_t>(heap);
}

}  // namespace

HeapFile::HeapFile(Pager& pager, int meta_base)
    : pager_(pager), meta_base_(meta_base) {
  MSSG_CHECK(meta_base >= 0 && meta_base + 2 < Pager::kMetaSlots);
}

void HeapFile::bump_rows(std::int64_t delta) {
  pager_.set_meta(meta_base_ + 2, pager_.meta(meta_base_ + 2) +
                                      static_cast<std::uint64_t>(delta));
}

std::uint64_t HeapFile::row_count() const { return pager_.meta(meta_base_ + 2); }

PageId HeapFile::append_page() {
  const PageId page = pager_.allocate();
  {
    auto handle = pager_.pin(page);
    init_heap_page(handle.mutable_data());
  }
  if (first_page() == kInvalidPage) {
    pager_.set_meta(meta_base_, page);
  } else {
    auto tail = pager_.pin(last_page());
    set_next_page(tail.mutable_data(), page);
  }
  pager_.set_meta(meta_base_ + 1, page);
  return page;
}

RowId HeapFile::insert(std::span<const std::byte> row) {
  // Build the stored cell: inline when it fits in a quarter page, spilled
  // to an overflow chain otherwise.
  const std::size_t inline_max = pager_.page_size() / 4;
  std::vector<std::byte> cell;
  std::uint16_t len;
  if (row.size() <= inline_max) {
    cell.assign(row.begin(), row.end());
    len = static_cast<std::uint16_t>(row.size());
  } else {
    const PageId head = overflow::write_chain(pager_, row);
    cell.resize(kSpillCellSize);
    store<std::uint64_t>(cell, 0, row.size());
    store<PageId>(cell, 8, head);
    len = kSpilledLen;
  }

  PageId page = last_page();
  if (page == kInvalidPage) page = append_page();

  const std::size_t need = kSlotSize + cell.size();
  {
    auto handle = pager_.pin(page);
    auto data = handle.mutable_data();
    if (free_space(data) < need) {
      const std::size_t live =
          kHeader + slot_count(data) * kSlotSize + live_bytes(data);
      if (pager_.page_size() - live >= need) compact(data);
    }
    if (free_space(data) >= need) {
      const auto off = write_cell(data, cell);
      const std::uint16_t slot = slot_count(data);
      set_slot(data, slot, {off, len});
      set_slot_count(data, static_cast<std::uint16_t>(slot + 1));
      bump_rows(1);
      return {page, slot};
    }
  }

  // Tail page full: open a new one.  (Heap files only ever append at the
  // tail; interior free space is reused via update-in-place.)
  page = append_page();
  auto handle = pager_.pin(page);
  auto data = handle.mutable_data();
  MSSG_CHECK(free_space(data) >= need);
  const auto off = write_cell(data, cell);
  set_slot(data, 0, {off, len});
  set_slot_count(data, 1);
  bump_rows(1);
  return {page, 0};
}

std::vector<std::byte> HeapFile::read(RowId id) const {
  auto handle = const_cast<Pager&>(pager_).pin(id.page);
  auto data = handle.data();
  if (load<std::uint8_t>(data, 0) != kHeapPageType) {
    throw StorageError("heap read: RowId does not point at a heap page");
  }
  if (id.slot >= slot_count(data)) {
    throw StorageError("heap read: slot out of range");
  }
  const auto s = get_slot(data, id.slot);
  if (s.off == kDeadOff) throw StorageError("heap read: row was deleted");
  if (s.len == kSpilledLen) {
    const auto total_len = load<std::uint64_t>(data, s.off);
    const auto head = load<PageId>(data, s.off + 8);
    return overflow::read_chain(pager_, head, total_len);
  }
  std::vector<std::byte> row(s.len);
  std::memcpy(row.data(), data.data() + s.off, s.len);
  return row;
}

void HeapFile::erase(RowId id) {
  auto handle = pager_.pin(id.page);
  auto data = handle.mutable_data();
  MSSG_CHECK(id.slot < slot_count(data));
  const auto s = get_slot(data, id.slot);
  if (s.off == kDeadOff) return;  // already dead
  if (s.len == kSpilledLen) {
    const auto head = load<PageId>(data, s.off + 8);
    overflow::free_chain(pager_, head);
  }
  set_slot(data, id.slot, {kDeadOff, 0});
  bump_rows(-1);
}

RowId HeapFile::update(RowId id, std::span<const std::byte> row) {
  const std::size_t inline_max = pager_.page_size() / 4;
  {
    auto handle = pager_.pin(id.page);
    auto data = handle.mutable_data();
    MSSG_CHECK(id.slot < slot_count(data));
    const auto s = get_slot(data, id.slot);
    MSSG_CHECK(s.off != kDeadOff);
    if (row.size() <= inline_max) {
      // In-place rewrite when the new row fits the existing cell.
      if (s.len != kSpilledLen && row.size() <= s.len) {
        std::memcpy(data.data() + s.off, row.data(), row.size());
        set_slot(data, id.slot,
                 {s.off, static_cast<std::uint16_t>(row.size())});
        return id;
      }
      // Otherwise try to place a fresh cell in the same page.
      const std::size_t old_cell = cell_size(s);
      if (s.len == kSpilledLen) {
        const auto head = load<PageId>(data, s.off + 8);
        overflow::free_chain(pager_, head);
      }
      set_slot(data, id.slot, {kDeadOff, 0});
      const std::size_t live =
          kHeader + slot_count(data) * kSlotSize + live_bytes(data);
      (void)old_cell;
      if (pager_.page_size() - live >= row.size()) {
        compact(data);
        const auto off = write_cell(data, row);
        set_slot(data, id.slot,
                 {off, static_cast<std::uint16_t>(row.size())});
        return id;
      }
      // No room: migrate (slot stays dead; count already balanced below).
      bump_rows(-1);
    } else {
      // New row spills: reuse the slot with a fresh overflow chain.
      if (s.len == kSpilledLen) {
        const auto head = load<PageId>(data, s.off + 8);
        overflow::free_chain(pager_, head);
      }
      set_slot(data, id.slot, {kDeadOff, 0});
      const std::size_t live =
          kHeader + slot_count(data) * kSlotSize + live_bytes(data);
      if (pager_.page_size() - live >= kSpillCellSize) {
        compact(data);
        const PageId head = overflow::write_chain(pager_, row);
        std::vector<std::byte> cell(kSpillCellSize);
        store<std::uint64_t>(cell, 0, row.size());
        store<PageId>(cell, 8, head);
        const auto off = write_cell(data, cell);
        set_slot(data, id.slot, {off, kSpilledLen});
        return id;
      }
      bump_rows(-1);
    }
  }
  return insert(row);
}

void HeapFile::for_each(
    const std::function<bool(RowId, std::span<const std::byte>)>& visit)
    const {
  PageId page = first_page();
  while (page != kInvalidPage) {
    std::vector<std::pair<RowId, std::vector<std::byte>>> batch;
    PageId next;
    {
      auto handle = const_cast<Pager&>(pager_).pin(page);
      auto data = handle.data();
      next = next_page(data);
      const std::size_t n = slot_count(data);
      for (std::size_t i = 0; i < n; ++i) {
        const auto s = get_slot(data, i);
        if (s.off == kDeadOff) continue;
        const RowId id{page, static_cast<std::uint16_t>(i)};
        if (s.len == kSpilledLen) {
          const auto total_len = load<std::uint64_t>(data, s.off);
          const auto head = load<PageId>(data, s.off + 8);
          batch.emplace_back(id, overflow::read_chain(pager_, head, total_len));
        } else {
          std::vector<std::byte> row(s.len);
          std::memcpy(row.data(), data.data() + s.off, s.len);
          batch.emplace_back(id, std::move(row));
        }
      }
    }
    for (const auto& [id, row] : batch) {
      if (!visit(id, row)) return;
    }
    page = next;
  }
}

}  // namespace mssg
