#include "storage/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/error.hpp"

namespace mssg {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::add_rule(Rule rule) {
  std::lock_guard lock(mutex_);
  rules_.push_back(Armed{std::move(rule)});
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard lock(mutex_);
  rules_.clear();
  triggered_ = 0;
  op_counts_[0] = op_counts_[1] = op_counts_[2] = op_counts_[3] = 0;
  enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::triggered() const {
  std::lock_guard lock(mutex_);
  return triggered_;
}

std::uint64_t FaultInjector::op_count(Op op) const {
  std::lock_guard lock(mutex_);
  return op_counts_[static_cast<int>(op)];
}

std::uint64_t FaultInjector::apply(Op op, const std::string& path,
                                   std::uint64_t size) {
  std::lock_guard lock(mutex_);
  std::uint64_t allowed = size;
  for (Armed& armed : rules_) {
    const Rule& rule = armed.rule;
    if (path.find(rule.path_substring) == std::string::npos) continue;

    // A fired kill rule poisons every later mutation on its paths — the
    // "process died here" simulation the crash sweep relies on.
    if (armed.fired && rule.kill && op != Op::kRead) {
      throw StorageError("fault injection: dead after kill point (" +
                         path + ")");
    }
    const bool matches =
        rule.op == op || (rule.op == Op::kMutate && op != Op::kRead);
    if (!matches) continue;

    ++op_counts_[static_cast<int>(op)];
    if (armed.fired || armed.seen++ != rule.nth) continue;
    armed.fired = true;
    ++triggered_;
    switch (rule.kind) {
      case Kind::kFail:
        throw StorageError("fault injection: " +
                           std::string(op == Op::kSync ? "sync" : "op") +
                           " failed (" + path + ")");
      case Kind::kTorn:
        allowed = std::min(allowed, rule.tear_bytes);
        break;
      case Kind::kShortRead:
        allowed = std::min(allowed, rule.tear_bytes);
        break;
    }
  }
  return allowed;
}

void FaultInjector::parse_spec(const std::string& spec) {
  Rule rule;
  bool have_path = false;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    if (item == "kill") {
      rule.kill = true;
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw UsageError("fault spec: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "path") {
      rule.path_substring = value;
      have_path = true;
    } else if (key == "op") {
      if (value == "read") rule.op = Op::kRead;
      else if (value == "write") rule.op = Op::kWrite;
      else if (value == "sync") rule.op = Op::kSync;
      else if (value == "mutate") rule.op = Op::kMutate;
      else throw UsageError("fault spec: unknown op '" + value + "'");
    } else if (key == "kind") {
      if (value == "fail") rule.kind = Kind::kFail;
      else if (value == "torn") rule.kind = Kind::kTorn;
      else if (value == "short") rule.kind = Kind::kShortRead;
      else throw UsageError("fault spec: unknown kind '" + value + "'");
    } else if (key == "nth" || key == "bytes") {
      std::uint64_t parsed = 0;
      try {
        std::size_t used = 0;
        parsed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw UsageError("fault spec: bad number for " + key + ": '" + value +
                         "'");
      }
      (key == "nth" ? rule.nth : rule.tear_bytes) = parsed;
    } else {
      throw UsageError("fault spec: unknown key '" + key + "'");
    }
  }
  if (!have_path) throw UsageError("fault spec: missing path=<substring>");
  add_rule(std::move(rule));
}

}  // namespace mssg
