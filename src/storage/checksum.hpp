// Page checksum trailers.  Every Pager / ExternalMetadata page reserves
// its last few bytes for a trailer of per-sector CRC32C values plus a
// self-checked footer; the usable payload is what the layers above see.
//
// The sector granularity is what lets a verification failure be
// *attributed*: a write torn at a byte boundary leaves a contiguous run
// of stale sectors touching one end of the page (the disk either wrote a
// prefix or kept a suffix), while bit rot flips isolated sectors in the
// middle.  The distinction feeds the storage.checksum_failures /
// storage.checksum_torn counters (DESIGN.md "Durability & recovery").
//
// Trailer layout, at the physical end of the page:
//
//   [u32 sector_crc[n]]  [u16 marker][u16 reserved][u32 tag]
//
// where n = number of kSectorBytes sectors covering the usable area and
// tag = crc32c(sector_crc[] || marker || reserved).  Sealing is a pure
// function of the payload, so double-sealing (journal copy + in-place
// write) produces identical bytes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/crc32c.hpp"
#include "common/error.hpp"

namespace mssg::page_checksum {

inline constexpr std::size_t kSectorBytes = 256;
inline constexpr std::uint16_t kMarker = 0xC5C5;
inline constexpr std::size_t kFooterBytes = 8;  // marker + reserved + tag

/// Trailer size for a physical page size (fixed point of the
/// sectors-cover-usable relation; converges in <= 2 steps for any
/// power-of-two page >= 256).
constexpr std::size_t trailer_bytes(std::size_t page_bytes) {
  std::size_t sectors = (page_bytes + kSectorBytes - 1) / kSectorBytes;
  for (;;) {
    const std::size_t usable = page_bytes - (4 * sectors + kFooterBytes);
    const std::size_t need = (usable + kSectorBytes - 1) / kSectorBytes;
    if (need == sectors) return 4 * sectors + kFooterBytes;
    sectors = need;
  }
}

constexpr std::size_t usable_bytes(std::size_t page_bytes) {
  return page_bytes - trailer_bytes(page_bytes);
}

constexpr std::size_t sector_count(std::size_t page_bytes) {
  return (trailer_bytes(page_bytes) - kFooterBytes) / 4;
}

/// Computes and writes the trailer over the full physical page.
/// Idempotent: same payload => same trailer bytes.
inline void seal(std::span<std::byte> page) {
  const std::size_t usable = usable_bytes(page.size());
  const std::size_t sectors = sector_count(page.size());
  std::byte* trailer = page.data() + usable;
  for (std::size_t s = 0; s < sectors; ++s) {
    const std::size_t begin = s * kSectorBytes;
    const std::size_t length = std::min(kSectorBytes, usable - begin);
    const std::uint32_t crc = crc32c(page.subspan(begin, length));
    std::memcpy(trailer + 4 * s, &crc, sizeof(crc));
  }
  std::uint16_t marker = kMarker;
  std::uint16_t reserved = 0;
  std::memcpy(trailer + 4 * sectors, &marker, sizeof(marker));
  std::memcpy(trailer + 4 * sectors + 2, &reserved, sizeof(reserved));
  const std::uint32_t tag =
      crc32c(std::span<const std::byte>(trailer, 4 * sectors + 4));
  std::memcpy(trailer + 4 * sectors + 4, &tag, sizeof(tag));
}

enum class State {
  kValid,   ///< trailer present and every sector matches
  kZero,    ///< whole page zero — never sealed (sparse / fresh extent)
  kTorn,    ///< mismatch run touching a page end, or footer torn
  kBitRot,  ///< isolated interior sector mismatch under a valid footer
};

/// Verifies a full physical page against its trailer.
inline State verify(std::span<const std::byte> page) {
  const std::size_t usable = usable_bytes(page.size());
  const std::size_t sectors = sector_count(page.size());
  const std::byte* trailer = page.data() + usable;

  std::uint16_t marker;
  std::memcpy(&marker, trailer + 4 * sectors, sizeof(marker));
  std::uint32_t tag;
  std::memcpy(&tag, trailer + 4 * sectors + 4, sizeof(tag));
  const std::uint32_t expect_tag =
      crc32c(std::span<const std::byte>(trailer, 4 * sectors + 4));

  if (marker != kMarker || tag != expect_tag) {
    // Unsealed is legal only for an all-zero page (a read past EOF or a
    // never-written page of a sparse file).
    const bool all_zero = std::all_of(page.begin(), page.end(), [](auto b) {
      return b == std::byte{0};
    });
    return all_zero ? State::kZero : State::kTorn;
  }

  std::size_t first_bad = sectors, last_bad = sectors, bad = 0;
  for (std::size_t s = 0; s < sectors; ++s) {
    const std::size_t begin = s * kSectorBytes;
    const std::size_t length = std::min(kSectorBytes, usable - begin);
    std::uint32_t stored;
    std::memcpy(&stored, trailer + 4 * s, sizeof(stored));
    if (crc32c(page.subspan(begin, length)) != stored) {
      if (bad == 0) first_bad = s;
      last_bad = s;
      ++bad;
    }
  }
  if (bad == 0) return State::kValid;
  // A tear leaves one contiguous stale run anchored at either end of the
  // page; anything else is attributed to bit rot.
  const bool contiguous = last_bad - first_bad + 1 == bad;
  const bool touches_end = first_bad == 0 || last_bad == sectors - 1;
  return contiguous && touches_end ? State::kTorn : State::kBitRot;
}

}  // namespace mssg::page_checksum
