#include "storage/block_cache.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "common/logging.hpp"

namespace mssg {

namespace {
// The attribution sink for cache accesses made by this thread.  Set by
// CacheAttributionScope (the query scheduler installs one per query rank
// thread); read on every get().
thread_local CacheAttribution* tls_attribution = nullptr;

void attribute(bool hit) {
  if (CacheAttribution* attr = tls_attribution; attr != nullptr) {
    (hit ? attr->hits : attr->misses).fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

CacheAttributionScope::CacheAttributionScope(CacheAttribution* attribution)
    : prev_(tls_attribution) {
  tls_attribution = attribution;
}

CacheAttributionScope::~CacheAttributionScope() { tls_attribution = prev_; }

CacheAttribution* BlockCache::current_attribution() { return tls_attribution; }

BlockHandle::BlockHandle(BlockHandle&& other) noexcept
    : cache_(std::exchange(other.cache_, nullptr)),
      entry_(std::exchange(other.entry_, nullptr)) {}

BlockHandle& BlockHandle::operator=(BlockHandle&& other) noexcept {
  if (this != &other) {
    release();
    cache_ = std::exchange(other.cache_, nullptr);
    entry_ = std::exchange(other.entry_, nullptr);
  }
  return *this;
}

BlockHandle::~BlockHandle() { release(); }

void BlockHandle::release() {
  if (entry_ != nullptr) {
    if (entry_->orphaned) {
      delete entry_;  // the cache is gone; the handle inherited ownership
    } else {
      cache_->unpin(entry_);
    }
    entry_ = nullptr;
    cache_ = nullptr;
  }
}

BlockCache::~BlockCache() {
  // Callers should flush() explicitly; this is a last-resort write-back so
  // data is never silently lost.  Write-behind requests already handed to
  // the engine must land before the files can be closed, and unadopted
  // prefetches are folded in so their accounting isn't dropped.
  std::lock_guard<std::mutex> lock(mu_);
  drain_async();
  // Entries still pinned here are leaked BlockHandles: persist them, then
  // detach them so the straggling handle can release safely — but never
  // silently.
  std::uint64_t leaked = 0;
  for (auto& [key, entry] : map_) {
    // A destructor cannot throw; a store that fails here (dying disk,
    // fault-injected kill) loses this block's last version, exactly as a
    // crashed process would have.  Callers wanting the error must
    // flush() explicitly.
    try {
      write_back(*entry);
    } catch (...) {
    }
    if (entry->pins != 0) {
      ++leaked;
      MSSG_LOG(kWarn) << "BlockCache destroyed with block " << entry->key
                      << " still pinned " << entry->pins
                      << "x — leaked BlockHandle";
      entry->orphaned = true;
      entry.release();  // intentionally dropped; freed by the leaked handle
    }
  }
  if (leaked != 0) {
    if (stats_ != nullptr) stats_->cache_pin_leaks += leaked;
    assert(false && "BlockHandle leaked past BlockCache destruction");
  }
}

std::uint16_t BlockCache::register_store(std::size_t block_size, Reader reader,
                                         Writer writer, Locator locator) {
  MSSG_CHECK(block_size > 0);
  std::lock_guard<std::mutex> lock(mu_);
  MSSG_CHECK(stores_.size() < (1u << 15));
  stores_.push_back(Store{block_size, std::move(reader), std::move(writer),
                          std::move(locator), StoreHooks{}});
  return static_cast<std::uint16_t>(stores_.size() - 1);
}

void BlockCache::set_store_hooks(std::uint16_t store, StoreHooks hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  MSSG_CHECK(store < stores_.size());
  MSSG_CHECK(hooks.usable_bytes <= stores_[store].block_size);
  stores_[store].hooks = std::move(hooks);
}

void BlockCache::enable_async_io(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_ != nullptr || capacity_bytes_ == 0) return;
  IoEngineOptions options;
  options.workers = workers == 0 ? 1 : workers;
  // Accounting of completions nobody polled before shutdown (and their
  // dropped-error count) lands in the node's stats instead of vanishing.
  options.sink = stats_;
  engine_ = std::make_unique<IoEngine>(options);
}

std::size_t BlockCache::prefetch_async(std::uint16_t store,
                                       std::span<const std::uint64_t> blocks) {
  std::lock_guard<std::mutex> lock(mu_);
  MSSG_CHECK(store < stores_.size());
  MSSG_CHECK(engine_ != nullptr);
  const Store& s = stores_[store];
  MSSG_CHECK(s.locator != nullptr);

  poll_async_locked();
  std::vector<IoRequest> batch;
  for (const std::uint64_t block : blocks) {
    MSSG_CHECK(block < (std::uint64_t{1} << kStoreShift));
    const std::uint64_t key =
        (static_cast<std::uint64_t>(store) << kStoreShift) | block;
    // Skip anything already cached or in flight; a key with a pending
    // write-behind must not be re-read from disk concurrently (get()
    // handles it by draining first).
    if (map_.contains(key) || pending_reads_.contains(key) ||
        pending_writes_.contains(key)) {
      continue;
    }
    const std::optional<AsyncTarget> target = s.locator(block, false);
    if (!target.has_value()) continue;  // sync reader resolves without disk

    IoRequest req;
    req.kind = IoRequest::Kind::kRead;
    req.file = target->file;
    req.offset = target->offset;
    req.buffer.resize(s.block_size);
    req.key = key;
    batch.push_back(std::move(req));
    pending_reads_.insert(key);
    // The miss happens here, at issue time, exactly as the synchronous
    // prefetch loop would have counted it — get() later sees a hit.
    if (stats_ != nullptr) {
      ++stats_->prefetch_issued;
      ++stats_->cache_misses;
    }
  }
  const std::size_t issued = batch.size();
  if (issued != 0) engine_->submit(std::move(batch));
  return issued;
}

void BlockCache::poll_async() {
  std::lock_guard<std::mutex> lock(mu_);
  poll_async_locked();
}

void BlockCache::poll_async_locked() {
  if (engine_ == nullptr || !engine_->has_completions()) return;
  std::vector<IoRequest> done = engine_->poll_completions(stats_);
  bool adopted = false;
  for (IoRequest& req : done) {
    if (req.kind == IoRequest::Kind::kWrite) {
      auto it = pending_writes_.find(req.key);
      MSSG_CHECK(it != pending_writes_.end());
      if (--it->second == 0) pending_writes_.erase(it);
      if (!req.error.empty() && deferred_error_.empty()) {
        deferred_error_ = "async write-behind failed: " + req.error;
      }
      continue;
    }
    MSSG_CHECK(pending_reads_.erase(req.key) == 1);
    // A failed or checksum-bad prefetch is simply dropped: a real get()
    // of the block falls back to the synchronous reader and surfaces the
    // error on the owning thread, where it can actually be handled.
    if (!req.error.empty()) continue;
    const auto store = static_cast<std::uint16_t>(req.key >> kStoreShift);
    if (stores_[store].hooks.verify != nullptr) {
      try {
        stores_[store].hooks.verify(
            req.key & ((std::uint64_t{1} << kStoreShift) - 1), req.buffer);
      } catch (...) {
        continue;
      }
    }
    // Adopt a finished read as a clean, unpinned resident entry.
    MSSG_CHECK(!map_.contains(req.key));
    auto entry = std::make_unique<detail::CacheEntry>();
    entry->key = req.key;
    entry->data = std::move(req.buffer);
    entry->usable = usable_of(store);
    entry->prefetched = true;
    make_resident(*entry);
    map_.emplace(req.key, std::move(entry));
    adopted = true;
  }
  if (adopted) evict_to_capacity();
}

BlockHandle BlockCache::get(std::uint16_t store, std::uint64_t block) {
  std::unique_lock<std::mutex> lock(mu_);
  MSSG_CHECK(store < stores_.size());
  MSSG_CHECK(block < (std::uint64_t{1} << kStoreShift));
  const std::uint64_t key =
      (static_cast<std::uint64_t>(store) << kStoreShift) | block;

  poll_async_locked();
  maybe_rethrow();
  auto it = map_.find(key);
  if (it == map_.end() && engine_ != nullptr) {
    if (pending_reads_.contains(key)) {
      // The prefetch covering this block is still in flight: wait for it
      // and adopt, so the block is read from disk exactly once.
      do {
        engine_->wait_for_completion();
        poll_async_locked();
      } while (pending_reads_.contains(key));
      it = map_.find(key);  // rarely absent: adopted then instantly evicted
    } else if (pending_writes_.contains(key)) {
      // A write-behind of this block's last contents has not landed yet;
      // reading the file now could return stale bytes.
      drain_async();
      maybe_rethrow();
    }
  }

  if (it != map_.end()) {
    detail::CacheEntry& entry = *it->second;
    // With caching disabled (capacity 0) the map can only hold blocks
    // that are currently pinned; sharing such a block is not a cache hit
    // (nothing is ever retained between unpins), and counting it as one
    // would pollute the Fig 5.2 cache-off series.
    const bool counts_as_hit = capacity_bytes_ != 0;
    if (stats_ != nullptr) {
      if (!counts_as_hit) {
        ++stats_->cache_misses;
      } else {
        ++stats_->cache_hits;
        // 2Q attribution: a hit on a block seen exactly once before is a
        // probation hit; a hit on an already re-referenced block lands in
        // the protected working set.
        if (entry.hot) {
          ++stats_->cache_protected_hits;
        } else {
          ++stats_->cache_probation_hits;
        }
        if (entry.prefetched) ++stats_->prefetch_hits;
      }
    }
    attribute(counts_as_hit);
    entry.prefetched = false;
    if (entry.resident && entry.pins == 0) {
      // Remove from its 2Q list while pinned.
      unlink(entry);
    }
    entry.hot = true;  // re-referenced: protected on next unpin
    ++entry.pins;
    return BlockHandle(this, &entry);
  }

  // Synchronous miss: the caller stalls on the store's reader.
  if (stats_ != nullptr) {
    ++stats_->cache_misses;
    ++stats_->read_stalls;
  }
  attribute(false);
  auto entry = std::make_unique<detail::CacheEntry>();
  entry->key = key;
  entry->data.resize(stores_[store].block_size);
  stores_[store].reader(block, entry->data);
  if (stores_[store].hooks.verify != nullptr) {
    stores_[store].hooks.verify(block, entry->data);
  }
  entry->usable = usable_of(store);
  entry->pins = 1;
  detail::CacheEntry* raw = entry.get();
  map_.emplace(key, std::move(entry));
  if (miss_penalty_us_ != 0) {
    // Simulated seek: the pin above keeps the entry safe, so the stall
    // is served with the lock released and concurrent queries overlap
    // their misses instead of queueing behind this one.
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(miss_penalty_us_));
  }
  return BlockHandle(this, raw);
}

BlockHandle BlockCache::create(std::uint16_t store, std::uint64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  MSSG_CHECK(store < stores_.size());
  MSSG_CHECK(block < (std::uint64_t{1} << kStoreShift));
  const std::uint64_t key =
      (static_cast<std::uint64_t>(store) << kStoreShift) | block;

  poll_async_locked();
  maybe_rethrow();
  if (engine_ != nullptr &&
      (pending_reads_.contains(key) || pending_writes_.contains(key))) {
    drain_async();
    maybe_rethrow();
  }

  detail::CacheEntry* raw = nullptr;
  auto it = map_.find(key);
  if (it != map_.end()) {
    detail::CacheEntry& entry = *it->second;
    MSSG_CHECK(entry.pins == 0);  // zeroing under a live handle is misuse
    if (entry.resident) unlink(entry);
    entry.pins = 1;
    raw = &entry;
  } else {
    if (stats_ != nullptr) ++stats_->cache_misses;  // an access, no disk read
    attribute(false);
    auto entry = std::make_unique<detail::CacheEntry>();
    entry->key = key;
    entry->data.resize(stores_[store].block_size);
    entry->pins = 1;
    raw = entry.get();
    map_.emplace(key, std::move(entry));
  }
  std::fill(raw->data.begin(), raw->data.end(), std::byte{0});
  raw->usable = usable_of(store);
  raw->dirty = true;
  raw->prefetched = false;
  return BlockHandle(this, raw);
}

void BlockCache::unpin(detail::CacheEntry* entry) {
  std::lock_guard<std::mutex> lock(mu_);
  MSSG_CHECK(entry->pins > 0);
  if (--entry->pins > 0) return;

  if (capacity_bytes_ == 0) {
    // Cache disabled: write through and drop immediately.  unpin runs
    // inside BlockHandle's destructor, so a write failure cannot
    // propagate here — it is parked and rethrown by the next
    // get()/flush()/drain_pending().
    try {
      write_back(*entry);
    } catch (const std::exception& e) {
      if (deferred_error_.empty()) deferred_error_ = e.what();
    }
    map_.erase(entry->key);
    return;
  }

  make_resident(*entry);
  try {
    evict_to_capacity();
  } catch (const std::exception& e) {
    if (deferred_error_.empty()) deferred_error_ = e.what();
  }
}

void BlockCache::make_resident(detail::CacheEntry& entry) {
  auto& list = entry.hot ? protected_ : probation_;
  list.push_front(entry.key);
  entry.lru_pos = list.begin();
  entry.in_protected = entry.hot;
  entry.resident = true;
  const std::size_t size = entry.data.size();
  resident_bytes_ += size;
  (entry.in_protected ? protected_bytes_ : probation_bytes_) += size;
  if (entry.in_protected) rebalance_protected();
}

void BlockCache::unlink(detail::CacheEntry& entry) {
  auto& list = entry.in_protected ? protected_ : probation_;
  list.erase(entry.lru_pos);
  entry.resident = false;
  const std::size_t size = entry.data.size();
  resident_bytes_ -= size;
  (entry.in_protected ? protected_bytes_ : probation_bytes_) -= size;
}

void BlockCache::rebalance_protected() {
  // Keep the protected (re-referenced) working set within its share of
  // capacity; the overflow tail gets one more life in probation.
  while (protected_bytes_ > protected_capacity() && !protected_.empty()) {
    const std::uint64_t key = protected_.back();
    protected_.pop_back();
    detail::CacheEntry& entry = *map_.at(key);
    const std::size_t size = entry.data.size();
    protected_bytes_ -= size;
    probation_bytes_ += size;
    entry.in_protected = false;
    entry.hot = false;  // must be re-referenced again to re-promote
    probation_.push_front(key);
    entry.lru_pos = probation_.begin();
  }
}

void BlockCache::write_back(detail::CacheEntry& entry) {
  if (!entry.dirty) return;
  const auto store = static_cast<std::uint16_t>(entry.key >> kStoreShift);
  const std::uint64_t block =
      entry.key & ((std::uint64_t{1} << kStoreShift) - 1);
  if (stores_[store].hooks.seal != nullptr) {
    stores_[store].hooks.seal(block, entry.data);
  }
  stores_[store].writer(block, entry.data);
  entry.dirty = false;
}

void BlockCache::evict_to_capacity() {
  std::vector<IoRequest> write_behind;
  while (resident_bytes_ > capacity_bytes_ &&
         (!probation_.empty() || !protected_.empty())) {
    // Scan resistance: first-touch (probation) blocks go first; the
    // protected list only shrinks when probation is empty.
    const bool from_probation = !probation_.empty();
    auto& list = from_probation ? probation_ : protected_;
    const std::uint64_t victim_key = list.back();
    list.pop_back();
    auto it = map_.find(victim_key);
    MSSG_CHECK(it != map_.end());
    detail::CacheEntry& victim = *it->second;
    MSSG_CHECK(victim.pins == 0);
    const auto store = static_cast<std::uint16_t>(victim_key >> kStoreShift);
    const std::uint64_t block =
        victim_key & ((std::uint64_t{1} << kStoreShift) - 1);

    // Eviction happens on unpin paths (handle destructors included), so
    // a failing store must not unwind out of here: the victim's last
    // version is lost — as on a dying disk — and the error is parked for
    // the next get()/flush()/drain_pending().
    try {
      bool deferred = false;
      if (victim.dirty && engine_ != nullptr &&
          stores_[store].locator != nullptr) {
        // The locator runs here, on the owning thread, so any store
        // metadata update (file creation, allocation bitmap) is done
        // before the payload leaves for the worker.
        if (std::optional<AsyncTarget> target =
                stores_[store].locator(block, true)) {
          if (stores_[store].hooks.seal != nullptr) {
            stores_[store].hooks.seal(block, victim.data);
          }
          IoRequest req;
          req.kind = IoRequest::Kind::kWrite;
          req.file = target->file;
          req.offset = target->offset;
          req.buffer = std::move(victim.data);
          req.key = victim_key;
          write_behind.push_back(std::move(req));
          ++pending_writes_[victim_key];
          deferred = true;
        }
      }
      if (!deferred) write_back(victim);
    } catch (const std::exception& e) {
      if (deferred_error_.empty()) deferred_error_ = e.what();
      victim.dirty = false;  // its contents die with this crash epoch
    }

    const std::size_t size = stores_[store].block_size;
    resident_bytes_ -= size;
    (from_probation ? probation_bytes_ : protected_bytes_) -= size;
    if (stats_ != nullptr) ++stats_->cache_evictions;
    map_.erase(it);
  }
  if (!write_behind.empty()) {
    // Durability barrier before the payloads leave for the workers: the
    // Locator calls above captured undo pre-images (owning thread); one
    // barrier per contributing store makes the whole batch's pre-images
    // durable before any worker can overwrite a block in place.  A
    // store whose barrier fails must NOT overwrite anything — its
    // victims' last versions die with this crash epoch (parked error,
    // like any other eviction failure), never a torn recovery.
    std::unordered_set<std::uint16_t> barriered;
    std::unordered_set<std::uint16_t> failed;
    for (const IoRequest& req : write_behind) {
      const auto store = static_cast<std::uint16_t>(req.key >> kStoreShift);
      if (!barriered.insert(store).second) continue;
      if (stores_[store].hooks.write_barrier == nullptr) continue;
      try {
        stores_[store].hooks.write_barrier();
      } catch (const std::exception& e) {
        if (deferred_error_.empty()) deferred_error_ = e.what();
        failed.insert(store);
      }
    }
    if (!failed.empty()) {
      std::erase_if(write_behind, [&](const IoRequest& req) {
        const auto store = static_cast<std::uint16_t>(req.key >> kStoreShift);
        if (!failed.contains(store)) return false;
        auto it = pending_writes_.find(req.key);
        MSSG_CHECK(it != pending_writes_.end());
        if (--it->second == 0) pending_writes_.erase(it);
        return true;
      });
    }
    if (!write_behind.empty()) engine_->submit(std::move(write_behind));
  }
}

void BlockCache::drain_async() {
  if (engine_ == nullptr) return;
  // Adoption can evict, and eviction can submit new write-behind
  // requests, so loop until the engine is truly quiet.
  while (!pending_reads_.empty() || !pending_writes_.empty() ||
         engine_->has_completions()) {
    engine_->drain();
    poll_async_locked();
  }
}

void BlockCache::maybe_rethrow() {
  if (deferred_error_.empty()) return;
  const std::string message = std::move(deferred_error_);
  deferred_error_.clear();
  throw StorageError(message);
}

void BlockCache::drain_pending() {
  std::lock_guard<std::mutex> lock(mu_);
  drain_async();
  maybe_rethrow();
}

void BlockCache::for_each_dirty(
    const std::function<void(std::uint16_t, std::uint64_t,
                             std::span<std::byte>)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> keys;
  keys.reserve(map_.size());
  for (const auto& [key, entry] : map_) {
    if (entry->dirty) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());  // deterministic journal order
  for (const std::uint64_t key : keys) {
    const auto it = map_.find(key);
    if (it == map_.end() || !it->second->dirty) continue;
    fn(static_cast<std::uint16_t>(key >> kStoreShift),
       key & ((std::uint64_t{1} << kStoreShift) - 1), it->second->data);
  }
}

void BlockCache::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void BlockCache::flush_locked() {
  drain_async();
  maybe_rethrow();
  for (auto& [key, entry] : map_) write_back(*entry);
}

void BlockCache::drop_clean() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
  for (auto* list : {&probation_, &protected_}) {
    for (auto lru_it = list->begin(); lru_it != list->end();) {
      auto map_it = map_.find(*lru_it);
      MSSG_CHECK(map_it != map_.end());
      resident_bytes_ -= map_it->second->data.size();
      map_.erase(map_it);
      lru_it = list->erase(lru_it);
    }
  }
  probation_bytes_ = 0;
  protected_bytes_ = 0;
}

int BlockCache::pin_count(std::uint16_t store, std::uint64_t block) const {
  std::lock_guard<std::mutex> lock(mu_);
  MSSG_CHECK(store < stores_.size());
  const std::uint64_t key =
      (static_cast<std::uint64_t>(store) << kStoreShift) | block;
  const auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second->pins;
}

MetricsSnapshot BlockCache::async_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Unadopted completions stay queued for the next poll_async(); the
  // engine's own registry is quiescent once drained.
  return engine_ == nullptr ? MetricsSnapshot{} : engine_->metrics();
}

}  // namespace mssg
