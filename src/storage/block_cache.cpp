#include "storage/block_cache.hpp"

#include <cassert>
#include <utility>

#include "common/logging.hpp"

namespace mssg {

BlockHandle::BlockHandle(BlockHandle&& other) noexcept
    : cache_(std::exchange(other.cache_, nullptr)),
      entry_(std::exchange(other.entry_, nullptr)) {}

BlockHandle& BlockHandle::operator=(BlockHandle&& other) noexcept {
  if (this != &other) {
    release();
    cache_ = std::exchange(other.cache_, nullptr);
    entry_ = std::exchange(other.entry_, nullptr);
  }
  return *this;
}

BlockHandle::~BlockHandle() { release(); }

void BlockHandle::release() {
  if (entry_ != nullptr) {
    if (entry_->orphaned) {
      delete entry_;  // the cache is gone; the handle inherited ownership
    } else {
      cache_->unpin(entry_);
    }
    entry_ = nullptr;
    cache_ = nullptr;
  }
}

BlockCache::~BlockCache() {
  // Callers should flush() explicitly; this is a last-resort write-back so
  // data is never silently lost.  Entries still pinned here are leaked
  // BlockHandles: persist them, then detach them so the straggling handle
  // can release safely — but never silently.
  std::uint64_t leaked = 0;
  for (auto& [key, entry] : map_) {
    write_back(*entry);
    if (entry->pins != 0) {
      ++leaked;
      MSSG_LOG(kWarn) << "BlockCache destroyed with block " << entry->key
                      << " still pinned " << entry->pins
                      << "x — leaked BlockHandle";
      entry->orphaned = true;
      entry.release();  // intentionally dropped; freed by the leaked handle
    }
  }
  if (leaked != 0) {
    if (stats_ != nullptr) stats_->cache_pin_leaks += leaked;
    assert(false && "BlockHandle leaked past BlockCache destruction");
  }
}

std::uint16_t BlockCache::register_store(std::size_t block_size, Reader reader,
                                         Writer writer) {
  MSSG_CHECK(block_size > 0);
  MSSG_CHECK(stores_.size() < (1u << 15));
  stores_.push_back(Store{block_size, std::move(reader), std::move(writer)});
  return static_cast<std::uint16_t>(stores_.size() - 1);
}

BlockHandle BlockCache::get(std::uint16_t store, std::uint64_t block) {
  MSSG_CHECK(store < stores_.size());
  MSSG_CHECK(block < (std::uint64_t{1} << kStoreShift));
  const std::uint64_t key =
      (static_cast<std::uint64_t>(store) << kStoreShift) | block;

  auto it = map_.find(key);
  if (it != map_.end()) {
    detail::CacheEntry& entry = *it->second;
    // With caching disabled (capacity 0) the map can only hold blocks
    // that are currently pinned; sharing such a block is not a cache hit
    // (nothing is ever retained between unpins), and counting it as one
    // would pollute the Fig 5.2 cache-off series.
    if (stats_ != nullptr) {
      if (capacity_bytes_ == 0) {
        ++stats_->cache_misses;
      } else {
        ++stats_->cache_hits;
      }
    }
    if (entry.resident && entry.pins == 0) {
      // Remove from the LRU while pinned.
      lru_.erase(entry.lru_pos);
      entry.resident = false;
      resident_bytes_ -= entry.data.size();
    }
    ++entry.pins;
    return BlockHandle(this, &entry);
  }

  if (stats_ != nullptr) ++stats_->cache_misses;
  auto entry = std::make_unique<detail::CacheEntry>();
  entry->key = key;
  entry->data.resize(stores_[store].block_size);
  stores_[store].reader(block, entry->data);
  entry->pins = 1;
  detail::CacheEntry* raw = entry.get();
  map_.emplace(key, std::move(entry));
  return BlockHandle(this, raw);
}

void BlockCache::unpin(detail::CacheEntry* entry) {
  MSSG_CHECK(entry->pins > 0);
  if (--entry->pins > 0) return;

  if (capacity_bytes_ == 0) {
    // Cache disabled: write through and drop immediately.
    write_back(*entry);
    map_.erase(entry->key);
    return;
  }

  lru_.push_front(entry->key);
  entry->lru_pos = lru_.begin();
  entry->resident = true;
  resident_bytes_ += entry->data.size();
  evict_to_capacity();
}

void BlockCache::write_back(detail::CacheEntry& entry) {
  if (!entry.dirty) return;
  const auto store = static_cast<std::uint16_t>(entry.key >> kStoreShift);
  const std::uint64_t block =
      entry.key & ((std::uint64_t{1} << kStoreShift) - 1);
  stores_[store].writer(block, entry.data);
  entry.dirty = false;
}

void BlockCache::evict_to_capacity() {
  while (resident_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const std::uint64_t victim_key = lru_.back();
    lru_.pop_back();
    auto it = map_.find(victim_key);
    MSSG_CHECK(it != map_.end());
    detail::CacheEntry& victim = *it->second;
    MSSG_CHECK(victim.pins == 0);
    write_back(victim);
    resident_bytes_ -= victim.data.size();
    if (stats_ != nullptr) ++stats_->cache_evictions;
    map_.erase(it);
  }
}

void BlockCache::flush() {
  for (auto& [key, entry] : map_) write_back(*entry);
}

void BlockCache::drop_clean() {
  flush();
  for (auto lru_it = lru_.begin(); lru_it != lru_.end();) {
    auto map_it = map_.find(*lru_it);
    MSSG_CHECK(map_it != map_.end());
    resident_bytes_ -= map_it->second->data.size();
    map_.erase(map_it);
    lru_it = lru_.erase(lru_it);
  }
}

}  // namespace mssg
