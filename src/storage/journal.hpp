// Undo+redo write-ahead journal for crash-safe page stores.
//
// A WriteJournal pairs two sidecar files next to a data file:
//
//   <base>.undo  pre-images, captured before the first in-place
//                overwrite of each block in an epoch.  Durability is
//                explicit: undo_barrier() fdatasyncs everything appended
//                so far, and callers place one barrier between capturing
//                pre-images and the overwrites they cover — so a whole
//                eviction batch amortizes one sync instead of paying one
//                per block.  Replayed in reverse the records roll the
//                data file back to the last committed state.
//   <base>.redo  post-images of everything a flush() intends to write,
//                terminated by a commit record.  Once the commit record
//                is durable, the flush is logically done: replaying the
//                redo records forward reproduces it even if the process
//                dies mid-way through the in-place writes.
//
// Group commit (sync_interval > 1): a flush may close with redo_defer()
// instead of redo_commit() — its redo records stay in the log, unsynced
// and uncommitted, and the next flush appends to them (redo_begin() only
// truncates once a commit retired the group).  Every sync_interval-th
// flush (commit_due()), or any forced one, writes ONE commit record
// covering the whole accumulated group, amortizing the two commit fsyncs
// over the group.  Crash inside a group: the commit record is absent, so
// recovery rolls back via undo to the last *boundary* — deferred flushes
// are atomic-all-or-nothing, never partially visible.
//
// Record format (native endianness — journals are node-local scratch,
// never shipped):  [u64 tag][u64 size][payload][u32 crc32c(header+payload)].
// The commit record uses the reserved kCommitTag and carries the count
// of preceding records, so a torn commit can never validate against the
// wrong epoch.  Both files start with an 8-byte magic; a file without it
// parses as empty.
//
// Recovery decision (plan_recovery):
//   redo has a valid commit record  ->  roll FORWARD (redo records)
//   else undo has any valid records ->  roll BACK (returned pre-reversed)
//   else                            ->  nothing to do
// The caller applies the records to the data file, syncs it, then calls
// trim().  trim() clears undo before redo: a crash between the two
// leaves a committed redo behind, and rolling forward an already-applied
// epoch is idempotent — the dangerous order (rollback of a committed
// epoch) can never happen.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "storage/file.hpp"

namespace mssg {

class WriteJournal {
 public:
  /// Tag reserved for the redo commit record; data tags must not use it.
  static constexpr std::uint64_t kCommitTag = 0x4A524E4C'434D5431ull;

  struct Record {
    std::uint64_t tag = 0;
    std::vector<std::byte> payload;
  };

  enum class Action : std::uint8_t { kNone, kRollForward, kRollBack };

  struct Recovery {
    Action action = Action::kNone;
    /// In application order: forward order for roll-forward, already
    /// reversed for roll-back.
    std::vector<Record> records;
  };

  /// Opens (creating if absent) `<base>.undo` and `<base>.redo`.
  /// `sync_interval` is the group-commit knob: every n-th flush commits;
  /// the ones in between defer (1 = classic commit-every-flush).
  WriteJournal(const std::filesystem::path& base, IoStats* stats,
               std::uint32_t sync_interval = 1);

  /// True if `tag` already has a pre-image this epoch.
  [[nodiscard]] bool undo_logged(std::uint64_t tag) const {
    std::lock_guard lk(mu_);
    return undo_logged_.contains(tag);
  }

  /// Captures a pre-image for `tag` (no-op if one exists this epoch).
  /// NOT durable by itself: callers overwrite in place only after an
  /// undo_barrier() has covered the record.
  void undo_record(std::uint64_t tag, std::span<const std::byte> payload);

  /// Makes every appended pre-image durable (no-op when none is
  /// pending).  One barrier may cover many undo_record()s — the
  /// batched-eviction path captures a whole write-behind batch, then
  /// barriers once before handing the payloads to the engine.
  void undo_barrier();

  /// True if any pre-image was captured since the last trim(): the data
  /// file may diverge from its committed state, so a flush must run even
  /// if no cache pages are dirty.
  [[nodiscard]] bool dirty_epoch() const {
    std::lock_guard lk(mu_);
    return !undo_logged_.empty();
  }

  /// Starts a redo epoch.  With no group pending it discards any stale
  /// uncommitted redo records; with deferred flushes accumulated it
  /// appends to them instead (a retried failed attempt may leave
  /// superseded records behind — roll-forward order makes the last
  /// version win).
  void redo_begin();

  /// Appends one post-image; not durable until redo_commit().
  void redo_record(std::uint64_t tag, std::span<const std::byte> payload);

  /// True when the flush closing now must commit rather than defer —
  /// i.e. it is the sync_interval-th of its group.
  [[nodiscard]] bool commit_due() const {
    std::lock_guard lk(mu_);
    return deferred_flushes_ + 1 >= sync_interval_;
  }

  /// Group commit: closes the current flush WITHOUT a commit record or
  /// any fsync.  Its records stay pending until a later redo_commit()
  /// retires the whole group (crashing before then rolls the group back
  /// atomically via undo).
  void redo_defer();

  /// True when deferred flushes are awaiting their boundary commit (a
  /// forced flush must run even if nothing new is dirty).
  [[nodiscard]] bool group_pending() const {
    std::lock_guard lk(mu_);
    return deferred_flushes_ != 0;
  }

  /// Makes the group's redo records durable, then appends and syncs the
  /// commit record.  After this returns every flush of the group is
  /// recoverable.
  void redo_commit();

  /// Inspects both files and decides what (if anything) must be replayed
  /// to restore the data file to its last committed state.
  Recovery plan_recovery();

  /// Empties both journals (undo first — see file comment) and resets
  /// the epoch.  Call after the data file's recovered/flushed state has
  /// been synced.
  void trim();

 private:
  struct Parsed {
    std::vector<Record> records;
    bool committed = false;
  };

  static std::uint64_t init_file(File& file);
  void append(File& file, std::uint64_t& bytes, std::uint64_t tag,
              std::span<const std::byte> payload);
  static Parsed parse(const File& file);

  // One leaf mutex over all journal state: with snapshot isolation on,
  // a reader-thread cache miss can evict a dirty block and capture its
  // undo pre-image while the writer thread runs a flush's redo sequence
  // — the two paths append to different files but share the counters
  // and the undo_logged_ set.  Ops under it never call out, so it nests
  // safely inside the BlockCache mutex.
  mutable std::mutex mu_;
  File undo_;
  File redo_;
  std::uint64_t undo_bytes_ = 0;
  std::uint64_t redo_bytes_ = 0;
  std::uint64_t redo_count_ = 0;  ///< records in the current redo epoch
  std::unordered_set<std::uint64_t> undo_logged_;
  IoStats* stats_ = nullptr;
  std::uint32_t sync_interval_ = 1;
  std::uint32_t deferred_flushes_ = 0;  ///< flushes closed with redo_defer()
                                        ///< since the last commit/trim
  bool undo_dirty_ = false;  ///< records appended since the last barrier
};

}  // namespace mssg
