// Undo+redo write-ahead journal for crash-safe page stores.
//
// A WriteJournal pairs two sidecar files next to a data file:
//
//   <base>.undo  pre-images, captured (and fdatasync'd) before the first
//                in-place overwrite of each block in an epoch.  Replayed
//                in reverse they roll the data file back to the last
//                committed state.
//   <base>.redo  post-images of everything a flush() intends to write,
//                terminated by a commit record.  Once the commit record
//                is durable, the flush is logically done: replaying the
//                redo records forward reproduces it even if the process
//                dies mid-way through the in-place writes.
//
// Record format (native endianness — journals are node-local scratch,
// never shipped):  [u64 tag][u64 size][payload][u32 crc32c(header+payload)].
// The commit record uses the reserved kCommitTag and carries the count
// of preceding records, so a torn commit can never validate against the
// wrong epoch.  Both files start with an 8-byte magic; a file without it
// parses as empty.
//
// Recovery decision (plan_recovery):
//   redo has a valid commit record  ->  roll FORWARD (redo records)
//   else undo has any valid records ->  roll BACK (returned pre-reversed)
//   else                            ->  nothing to do
// The caller applies the records to the data file, syncs it, then calls
// trim().  trim() clears undo before redo: a crash between the two
// leaves a committed redo behind, and rolling forward an already-applied
// epoch is idempotent — the dangerous order (rollback of a committed
// epoch) can never happen.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <unordered_set>
#include <vector>

#include "storage/file.hpp"

namespace mssg {

class WriteJournal {
 public:
  /// Tag reserved for the redo commit record; data tags must not use it.
  static constexpr std::uint64_t kCommitTag = 0x4A524E4C'434D5431ull;

  struct Record {
    std::uint64_t tag = 0;
    std::vector<std::byte> payload;
  };

  enum class Action : std::uint8_t { kNone, kRollForward, kRollBack };

  struct Recovery {
    Action action = Action::kNone;
    /// In application order: forward order for roll-forward, already
    /// reversed for roll-back.
    std::vector<Record> records;
  };

  /// Opens (creating if absent) `<base>.undo` and `<base>.redo`.
  WriteJournal(const std::filesystem::path& base, IoStats* stats);

  /// True if `tag` already has a pre-image this epoch.
  [[nodiscard]] bool undo_logged(std::uint64_t tag) const {
    return undo_logged_.contains(tag);
  }

  /// Captures a pre-image for `tag` (no-op if one exists this epoch) and
  /// makes it durable before returning — callers overwrite in place only
  /// after this returns.
  void undo_record(std::uint64_t tag, std::span<const std::byte> payload);

  /// True if any pre-image was captured since the last trim(): the data
  /// file may diverge from its committed state, so a flush must run even
  /// if no cache pages are dirty.
  [[nodiscard]] bool dirty_epoch() const { return !undo_logged_.empty(); }

  /// Starts a redo epoch (discards any stale uncommitted redo records).
  void redo_begin();

  /// Appends one post-image; not durable until redo_commit().
  void redo_record(std::uint64_t tag, std::span<const std::byte> payload);

  /// Makes the epoch's redo records durable, then appends and syncs the
  /// commit record.  After this returns the flush is recoverable.
  void redo_commit();

  /// Inspects both files and decides what (if anything) must be replayed
  /// to restore the data file to its last committed state.
  Recovery plan_recovery();

  /// Empties both journals (undo first — see file comment) and resets
  /// the epoch.  Call after the data file's recovered/flushed state has
  /// been synced.
  void trim();

 private:
  struct Parsed {
    std::vector<Record> records;
    bool committed = false;
  };

  static std::uint64_t init_file(File& file);
  void append(File& file, std::uint64_t& bytes, std::uint64_t tag,
              std::span<const std::byte> payload);
  static Parsed parse(const File& file);

  File undo_;
  File redo_;
  std::uint64_t undo_bytes_ = 0;
  std::uint64_t redo_bytes_ = 0;
  std::uint64_t redo_count_ = 0;  ///< records in the current redo epoch
  std::unordered_set<std::uint64_t> undo_logged_;
  IoStats* stats_ = nullptr;
};

}  // namespace mssg
