#include "storage/file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace mssg {

namespace {
[[noreturn]] void throw_errno(const std::string& op,
                              const std::filesystem::path& path) {
  throw StorageError(op + " failed for " + path.string() + ": " +
                     std::strerror(errno));
}
}  // namespace

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      stats_(std::exchange(other.stats_, nullptr)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    stats_ = std::exchange(other.stats_, nullptr);
  }
  return *this;
}

File::~File() { close(); }

File File::open(const std::filesystem::path& path, IoStats* stats) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open", path);
  return File(fd, stats);
}

File File::open_readonly(const std::filesystem::path& path, IoStats* stats) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open (read-only)", path);
  return File(fd, stats);
}

std::size_t File::read_at(std::uint64_t offset, std::span<std::byte> buffer,
                          IoStats* stats) const {
  MSSG_CHECK(is_open());
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t n = ::pread(fd_, buffer.data() + done, buffer.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StorageError(std::string("pread failed: ") + std::strerror(errno));
    }
    if (n == 0) break;  // past EOF: zero-fill the rest
    done += static_cast<std::size_t>(n);
  }
  if (done < buffer.size()) {
    std::memset(buffer.data() + done, 0, buffer.size() - done);
  }
  if (stats != nullptr) {
    ++stats->reads;
    stats->bytes_read += buffer.size();
  }
  return done;
}

void File::write_at(std::uint64_t offset, std::span<const std::byte> buffer,
                    IoStats* stats) const {
  MSSG_CHECK(is_open());
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t n = ::pwrite(fd_, buffer.data() + done, buffer.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StorageError(std::string("pwrite failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (stats != nullptr) {
    ++stats->writes;
    stats->bytes_written += buffer.size();
  }
}

std::uint64_t File::size() const {
  MSSG_CHECK(is_open());
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    throw StorageError(std::string("lseek failed: ") + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(end);
}

void File::truncate(std::uint64_t new_size) const {
  MSSG_CHECK(is_open());
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    throw StorageError(std::string("ftruncate failed: ") +
                       std::strerror(errno));
  }
}

void File::sync() const {
  MSSG_CHECK(is_open());
  if (::fdatasync(fd_) != 0) {
    throw StorageError(std::string("fdatasync failed: ") +
                       std::strerror(errno));
  }
  if (stats_ != nullptr) ++stats_->syncs;
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mssg
