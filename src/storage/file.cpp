#include "storage/file.hpp"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "storage/fault_injector.hpp"

namespace mssg {

namespace {
[[noreturn]] void throw_errno(const std::string& op,
                              const std::filesystem::path& path) {
  throw StorageError(op + " failed for " + path.string() + ": " +
                     std::strerror(errno));
}
}  // namespace

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      stats_(std::exchange(other.stats_, nullptr)),
      path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    stats_ = std::exchange(other.stats_, nullptr);
    path_ = std::move(other.path_);
  }
  return *this;
}

File::~File() { close(); }

File File::open(const std::filesystem::path& path, IoStats* stats) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open", path);
  return File(fd, stats, path.string());
}

File File::open_readonly(const std::filesystem::path& path, IoStats* stats) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open (read-only)", path);
  return File(fd, stats, path.string());
}

std::size_t File::read_at(std::uint64_t offset, std::span<std::byte> buffer,
                          IoStats* stats) const {
  MSSG_CHECK(is_open());
  std::size_t want = buffer.size();
  if (FaultInjector::instance().enabled()) {
    // A short read delivers a prefix; the remainder zero-fills below,
    // exactly like a read past EOF of a truncated file.
    want = static_cast<std::size_t>(FaultInjector::instance().apply(
        FaultInjector::Op::kRead, path_, want));
  }
  std::size_t done = 0;
  while (done < want) {
    const ssize_t n = ::pread(fd_, buffer.data() + done, want - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StorageError(std::string("pread failed: ") + std::strerror(errno));
    }
    if (n == 0) break;  // past EOF: zero-fill the rest
    done += static_cast<std::size_t>(n);
  }
  if (done < buffer.size()) {
    std::memset(buffer.data() + done, 0, buffer.size() - done);
  }
  if (stats != nullptr) {
    ++stats->reads;
    stats->bytes_read += buffer.size();
  }
  return done;
}

void File::write_at(std::uint64_t offset, std::span<const std::byte> buffer,
                    IoStats* stats) const {
  MSSG_CHECK(is_open());
  std::size_t allow = buffer.size();
  if (FaultInjector::instance().enabled()) {
    allow = static_cast<std::size_t>(FaultInjector::instance().apply(
        FaultInjector::Op::kWrite, path_, allow));
  }
  std::size_t done = 0;
  while (done < allow) {
    const ssize_t n = ::pwrite(fd_, buffer.data() + done, allow - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StorageError(std::string("pwrite failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (stats != nullptr) {
    ++stats->writes;
    stats->bytes_written += done;
  }
  if (allow < buffer.size()) {
    // The torn prefix is on disk; the caller sees the write fail, as a
    // crashed process would have (it never got to observe anything).
    throw StorageError("fault injection: torn write (" + path_ + ": " +
                       std::to_string(allow) + "/" +
                       std::to_string(buffer.size()) + " bytes)");
  }
}

void File::read_vectored(std::uint64_t offset,
                         std::span<const std::span<std::byte>> buffers,
                         IoStats* stats) const {
  MSSG_CHECK(is_open());
  if (buffers.empty()) return;
  if (FaultInjector::instance().enabled()) {
    // Deterministic fault indices: one injector consultation per block,
    // exactly like the unmerged path.
    std::uint64_t pos = offset;
    for (const auto& buf : buffers) {
      read_at(pos, buf, stats);
      pos += buf.size();
    }
    return;
  }
  std::vector<iovec> iov(buffers.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    iov[i].iov_base = buffers[i].data();
    iov[i].iov_len = buffers[i].size();
    total += buffers[i].size();
  }
  std::size_t done = 0;
  std::size_t skip = 0;  // fully-consumed iovecs at the front
  while (done < total) {
    // Advance past completed iovecs and trim the partial head.
    while (skip < iov.size() && iov[skip].iov_len == 0) ++skip;
    const ssize_t n =
        ::preadv(fd_, iov.data() + skip, static_cast<int>(iov.size() - skip),
                 static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StorageError(std::string("preadv failed: ") + std::strerror(errno));
    }
    if (n == 0) break;  // past EOF: zero-fill the rest below
    done += static_cast<std::size_t>(n);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0 && skip < iov.size()) {
      const std::size_t take = std::min(left, iov[skip].iov_len);
      iov[skip].iov_base = static_cast<std::byte*>(iov[skip].iov_base) + take;
      iov[skip].iov_len -= take;
      left -= take;
      if (iov[skip].iov_len == 0) ++skip;
    }
  }
  if (done < total) {
    for (std::size_t i = skip; i < iov.size(); ++i) {
      std::memset(iov[i].iov_base, 0, iov[i].iov_len);
    }
  }
  if (stats != nullptr) {
    ++stats->reads;
    stats->bytes_read += total;
  }
}

void File::write_vectored(std::uint64_t offset,
                          std::span<const std::span<const std::byte>> buffers,
                          IoStats* stats) const {
  MSSG_CHECK(is_open());
  if (buffers.empty()) return;
  if (FaultInjector::instance().enabled()) {
    std::uint64_t pos = offset;
    for (const auto& buf : buffers) {
      write_at(pos, buf, stats);
      pos += buf.size();
    }
    return;
  }
  std::vector<iovec> iov(buffers.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    iov[i].iov_base = const_cast<std::byte*>(buffers[i].data());
    iov[i].iov_len = buffers[i].size();
    total += buffers[i].size();
  }
  std::size_t done = 0;
  std::size_t skip = 0;
  while (done < total) {
    while (skip < iov.size() && iov[skip].iov_len == 0) ++skip;
    const ssize_t n =
        ::pwritev(fd_, iov.data() + skip, static_cast<int>(iov.size() - skip),
                  static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StorageError(std::string("pwritev failed: ") +
                         std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0 && skip < iov.size()) {
      const std::size_t take = std::min(left, iov[skip].iov_len);
      iov[skip].iov_base = static_cast<std::byte*>(iov[skip].iov_base) + take;
      iov[skip].iov_len -= take;
      left -= take;
      if (iov[skip].iov_len == 0) ++skip;
    }
  }
  if (stats != nullptr) {
    ++stats->writes;
    stats->bytes_written += done;
  }
}

std::uint64_t File::size() const {
  MSSG_CHECK(is_open());
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    throw StorageError(std::string("lseek failed: ") + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(end);
}

void File::truncate(std::uint64_t new_size) const {
  MSSG_CHECK(is_open());
  if (FaultInjector::instance().enabled()) {
    // A truncate mutates durable state like a write does, so it is a
    // kill point too (journal trims go through here).
    FaultInjector::instance().apply(FaultInjector::Op::kWrite, path_, 0);
  }
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    throw StorageError(std::string("ftruncate failed: ") +
                       std::strerror(errno));
  }
}

void File::sync() const {
  MSSG_CHECK(is_open());
  if (FaultInjector::instance().enabled()) {
    FaultInjector::instance().apply(FaultInjector::Op::kSync, path_, 0);
  }
  if (::fdatasync(fd_) != 0) {
    throw StorageError(std::string("fdatasync failed: ") +
                       std::strerror(errno));
  }
  if (stats_ != nullptr) ++stats_->syncs;
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void File::drop_page_cache() const {
  if (fd_ < 0) return;
  // Dirty pages pin their cache entries; flush them first so the advice
  // can actually evict.  Best-effort by design: errors are ignored.
  ::fdatasync(fd_);
#ifdef POSIX_FADV_DONTNEED
  (void)::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
#endif
}

}  // namespace mssg
