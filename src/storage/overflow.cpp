#include "storage/overflow.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace mssg::overflow {

namespace {
template <typename T>
T load(std::span<const std::byte> page, std::size_t off) {
  T v;
  std::memcpy(&v, page.data() + off, sizeof(T));
  return v;
}

template <typename T>
void store(std::span<std::byte> page, std::size_t off, T v) {
  std::memcpy(page.data() + off, &v, sizeof(T));
}
}  // namespace

PageId write_chain(Pager& pager, std::span<const std::byte> value) {
  const std::size_t capacity = pager.page_size() - kHeader;
  PageId head = kInvalidPage;
  PageId prev = kInvalidPage;
  std::size_t pos = 0;
  do {
    const PageId page = pager.allocate();
    if (head == kInvalidPage) head = page;
    if (prev != kInvalidPage) {
      auto prev_handle = pager.pin(prev);
      store<PageId>(prev_handle.mutable_data(), 8, page);
    }
    const std::size_t n = std::min(capacity, value.size() - pos);
    auto handle = pager.pin(page);
    auto data = handle.mutable_data();
    store<std::uint8_t>(data, 0, kPageType);
    store<std::uint32_t>(data, 4, static_cast<std::uint32_t>(n));
    store<PageId>(data, 8, kInvalidPage);
    if (n > 0) std::memcpy(data.data() + kHeader, value.data() + pos, n);
    pos += n;
    prev = page;
  } while (pos < value.size());
  return head;
}

std::vector<std::byte> read_chain(const Pager& pager, PageId head,
                                  std::uint64_t len) {
  std::vector<std::byte> value(len);
  std::size_t pos = 0;
  PageId page = head;
  while (pos < len) {
    MSSG_CHECK(page != kInvalidPage);
    auto handle = const_cast<Pager&>(pager).pin(page);
    auto data = handle.data();
    if (load<std::uint8_t>(data, 0) != kPageType) {
      throw StorageError("overflow chain points at non-overflow page");
    }
    const auto used = load<std::uint32_t>(data, 4);
    MSSG_CHECK(pos + used <= len);
    std::memcpy(value.data() + pos, data.data() + kHeader, used);
    pos += used;
    page = load<PageId>(data, 8);
  }
  return value;
}

void free_chain(Pager& pager, PageId head) {
  while (head != kInvalidPage) {
    PageId next;
    {
      auto handle = pager.pin(head);
      next = load<PageId>(handle.data(), 8);
    }
    pager.free_page(head);
    head = next;
  }
}

}  // namespace mssg::overflow
