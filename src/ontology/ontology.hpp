// Semantic-graph ontology (chapter 1, Figure 1.1).
//
// An ontology is a typed graph over *vertex types* and *edge types* that
// acts as the blueprint for instance graphs: an instance edge is legal
// only if the ontology connects its endpoint types with that edge type
// ("'Date' vertices are only connected to 'Meeting' vertices and 'Travel'
// vertices").  The ontology is itself a semantic graph and can be
// exported as one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace mssg {

class Ontology {
 public:
  /// Registers a vertex type; returns its id (stable, starting at 1 —
  /// kUntyped = 0 is reserved).  Re-registering a name returns the
  /// existing id.
  TypeId add_vertex_type(const std::string& name);

  /// Registers an edge type connecting two vertex types (directed:
  /// src_type --name--> dst_type).  For symmetric relations register both
  /// directions.
  TypeId add_edge_type(const std::string& name, TypeId src_type,
                       TypeId dst_type);

  [[nodiscard]] std::optional<TypeId> vertex_type(const std::string& name)
      const;
  [[nodiscard]] std::optional<TypeId> edge_type(const std::string& name) const;
  [[nodiscard]] const std::string& vertex_type_name(TypeId id) const;
  [[nodiscard]] const std::string& edge_type_name(TypeId id) const;

  /// Does the ontology permit src_type --edge_type--> dst_type?
  [[nodiscard]] bool allows(TypeId src_type, TypeId edge_type,
                            TypeId dst_type) const;

  /// Throws OntologyError when the typed edge violates the schema.
  void validate(const TypedEdge& edge) const;

  [[nodiscard]] std::size_t vertex_type_count() const {
    return vertex_type_names_.size();
  }
  [[nodiscard]] std::size_t edge_type_count() const {
    return edge_type_names_.size();
  }

  /// The ontology as a semantic graph: one vertex per vertex type (GID =
  /// TypeId), one edge per allowed connection.
  [[nodiscard]] std::vector<TypedEdge> to_edges() const;

 private:
  struct EdgeRule {
    TypeId src_type;
    TypeId dst_type;
  };

  std::vector<std::string> vertex_type_names_;  // index = TypeId - 1
  std::vector<std::string> edge_type_names_;
  std::vector<EdgeRule> edge_rules_;  // index = edge TypeId - 1
  std::unordered_map<std::string, TypeId> vertex_by_name_;
  std::unordered_map<std::string, TypeId> edge_by_name_;
};

/// Assigns and checks instance-vertex types during typed ingestion: a
/// vertex keeps the type of its first appearance; conflicting re-typing
/// throws OntologyError.
class VertexTypeRegistry {
 public:
  /// Records (or confirms) a vertex's type.
  void bind(VertexId v, TypeId type);
  [[nodiscard]] TypeId type_of(VertexId v) const;  // kUntyped if unknown
  [[nodiscard]] std::size_t size() const { return types_.size(); }

 private:
  std::unordered_map<VertexId, TypeId> types_;
};

/// Validates a typed edge stream against an ontology, binding vertex
/// types along the way, and yields the untyped edges for ingestion.
class TypedEdgeValidator {
 public:
  explicit TypedEdgeValidator(const Ontology& ontology)
      : ontology_(ontology) {}

  /// Validates and strips types.  Throws OntologyError on any schema or
  /// type-conflict violation.
  Edge accept(const TypedEdge& edge);

  [[nodiscard]] const VertexTypeRegistry& registry() const {
    return registry_;
  }

 private:
  const Ontology& ontology_;
  VertexTypeRegistry registry_;
};

}  // namespace mssg
