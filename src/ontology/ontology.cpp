#include "ontology/ontology.hpp"

#include "common/error.hpp"

namespace mssg {

TypeId Ontology::add_vertex_type(const std::string& name) {
  auto it = vertex_by_name_.find(name);
  if (it != vertex_by_name_.end()) return it->second;
  vertex_type_names_.push_back(name);
  const auto id = static_cast<TypeId>(vertex_type_names_.size());
  vertex_by_name_.emplace(name, id);
  return id;
}

TypeId Ontology::add_edge_type(const std::string& name, TypeId src_type,
                               TypeId dst_type) {
  if (src_type == kUntyped || src_type > vertex_type_names_.size() ||
      dst_type == kUntyped || dst_type > vertex_type_names_.size()) {
    throw OntologyError("edge type '" + name +
                        "' references unknown vertex types");
  }
  // The same relation name may connect several type pairs ("attends"
  // could link Person->Meeting and Organization->Meeting); each pair is
  // its own rule, and the name maps to the first.
  edge_type_names_.push_back(name);
  edge_rules_.push_back(EdgeRule{src_type, dst_type});
  const auto id = static_cast<TypeId>(edge_type_names_.size());
  edge_by_name_.try_emplace(name, id);
  return id;
}

std::optional<TypeId> Ontology::vertex_type(const std::string& name) const {
  auto it = vertex_by_name_.find(name);
  if (it == vertex_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<TypeId> Ontology::edge_type(const std::string& name) const {
  auto it = edge_by_name_.find(name);
  if (it == edge_by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& Ontology::vertex_type_name(TypeId id) const {
  if (id == kUntyped || id > vertex_type_names_.size()) {
    throw OntologyError("unknown vertex type id " + std::to_string(id));
  }
  return vertex_type_names_[id - 1];
}

const std::string& Ontology::edge_type_name(TypeId id) const {
  if (id == kUntyped || id > edge_type_names_.size()) {
    throw OntologyError("unknown edge type id " + std::to_string(id));
  }
  return edge_type_names_[id - 1];
}

bool Ontology::allows(TypeId src_type, TypeId edge_type,
                      TypeId dst_type) const {
  if (edge_type == kUntyped || edge_type > edge_rules_.size()) return false;
  const auto& rule = edge_rules_[edge_type - 1];
  return rule.src_type == src_type && rule.dst_type == dst_type;
}

void Ontology::validate(const TypedEdge& edge) const {
  if (!allows(edge.src_type, edge.edge_type, edge.dst_type)) {
    const auto describe = [this](TypeId t, bool vertex) -> std::string {
      if (t == kUntyped) return "<untyped>";
      if (vertex) {
        return t <= vertex_type_names_.size() ? vertex_type_names_[t - 1]
                                              : "<bad id>";
      }
      return t <= edge_type_names_.size() ? edge_type_names_[t - 1]
                                          : "<bad id>";
    };
    throw OntologyError("ontology forbids " + describe(edge.src_type, true) +
                        " --" + describe(edge.edge_type, false) + "--> " +
                        describe(edge.dst_type, true));
  }
}

std::vector<TypedEdge> Ontology::to_edges() const {
  std::vector<TypedEdge> edges;
  edges.reserve(edge_rules_.size());
  for (std::size_t i = 0; i < edge_rules_.size(); ++i) {
    TypedEdge e;
    e.edge = Edge{edge_rules_[i].src_type, edge_rules_[i].dst_type};
    e.src_type = edge_rules_[i].src_type;
    e.dst_type = edge_rules_[i].dst_type;
    e.edge_type = static_cast<TypeId>(i + 1);
    edges.push_back(e);
  }
  return edges;
}

void VertexTypeRegistry::bind(VertexId v, TypeId type) {
  auto [it, inserted] = types_.try_emplace(v, type);
  if (!inserted && it->second != type) {
    throw OntologyError("vertex " + std::to_string(v) +
                        " re-typed: " + std::to_string(it->second) + " vs " +
                        std::to_string(type));
  }
}

TypeId VertexTypeRegistry::type_of(VertexId v) const {
  auto it = types_.find(v);
  return it == types_.end() ? kUntyped : it->second;
}

Edge TypedEdgeValidator::accept(const TypedEdge& edge) {
  ontology_.validate(edge);
  registry_.bind(edge.edge.src, edge.src_type);
  registry_.bind(edge.edge.dst, edge.dst_type);
  return edge.edge;
}

}  // namespace mssg
