#!/usr/bin/env bash
# Sanitizer CI: builds the tsan and asan-ubsan presets and runs the
# concurrency-heavy test suites (runtime, BFS, stress) plus the metrics
# and block-cache suites under each.  Any report is fatal
# (halt_on_error / -fno-sanitize-recover=all).
#
# Usage: tools/ci_sanitize.sh [tsan|asan-ubsan]   (default: both)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="${JOBS:-$(nproc)}"

# The suites that exercise cross-thread behavior: the simulated-cluster
# runtime, the SPMD searches, the ingestion pipeline, and the stress
# suite — plus the metrics layer and BlockCache regressions this CI
# exists to guard.
FILTER='Mailbox.*:Comm.*:CommStress.*:Stream.*:StreamBackpressure.*'
FILTER+=':FilterGraph.*:*ParallelBfs*:PipelinedExtreme.*:FileIngestion.*'
FILTER+=':GrdbTorture.*:BlockCache.*:Metrics*.*'
# PR 2: the async I/O engine is the one place a second thread touches
# storage — every engine/cache/prefetch suite runs under both sanitizers.
FILTER+=':IoEngine.*:AsyncIo.*:PagerFreeList.*:*BfsAsyncEquivalence*'
# PR 3: shared zero-copy payload buffers cross threads by design, and the
# mailbox wakeup protocol uses per-waiter condition variables — the codec
# and wire-equivalence suites must stay clean under both sanitizers.
FILTER+=':PayloadBuffer.*:VertexCodec.*:BfsWireEquivalence.*'
# PR 5: crash-safety — the kill-point sweep and torn-write fuzz throw
# through the eviction/write-behind paths from both threads; strided so
# a sanitizer run stays bounded (a stride-7 sweep still crosses every
# phase of the flush protocol).
FILTER+=':CrashRecovery.*:*CrashRecovery*:TornWrite.*:FaultInjector.*'
# PR 6: the concurrent query engine — scheduler admission, the shared 2Q
# cache under eight query threads, MS-BFS equivalence, and the
# cross-backend differential harness.  (These are also the `ctest -L
# concurrency` label, run below under tsan via ctest so label coverage
# and filter coverage cannot drift apart.)
FILTER+=':ConcurrencyStress.*:MsBfsEquivalence.*:*Differential.*:BlockCache2Q.*'
# PR 7: the multi-lane I/O engine — N workers share the completion queue,
# the quiescence predicates, and the metrics registry; the stress suite
# races submit/poll/wait/drain/metrics across all of them.  The full io
# label (engine + async cache + group-commit crash sweeps) also runs via
# ctest under BOTH presets below.
FILTER+=':IoEngineStress.*'
# PR 8: the VertexProgram engine — every analysis runs one kernel thread
# per simulated rank, all charging one shared QueryBudget and merging
# into per-query registries; the scheduler mix runs six analyses at once
# over the shared cache.  The full analytics label (these suites plus the
# A14 mixed-workload smoke) also runs via ctest under BOTH presets below.
FILTER+=':VertexProgramEngine.*:*VpBfsEquivalence*:CcDeterminism.*'
FILTER+=':AnalyticsReference.*:*AnalyticsScheduler*'
# PR 9: the zero-copy mmap read path — scan threads read MAP_SHARED
# views while the verified-bitmap latches lazily (fetch_or) and map/unmap
# transitions race point probes on the cache path.  The full mmap label
# (these suites plus the A15 smoke) also runs via ctest under BOTH
# presets below.
FILTER+=':MappedFile.*:MappedBlockSource.*:Mmap*'
# PR 10: epoch-based snapshot isolation — reader threads pin epochs and
# walk COW pre-images while the ingest path captures versions, advances
# epochs and retires them; the stress suites race 8 readers against a
# live writer and the interleaved differential harness replays
# store/flush/pin/release schedules on every backend.  (Note the PR 6
# `*Differential.*` pattern does NOT match `DifferentialTxn.*` — the
# literal dot sits after "Differential", so the new suite is listed
# explicitly.)  The full txn label also runs via ctest under BOTH
# presets below.
FILTER+=':EpochMechanics.*:*SnapshotCow*:SnapshotMmap.*:*SnapshotStress*'
FILTER+=':*DifferentialTxn*'
# PR 11: the serving front-end — the parser fuzz wall hammers the
# lexer's byte handling (mutated non-UTF8 input is exactly where a
# one-past-the-end read hides, asan territory), the SLO scheduler
# invariants race queued waiters against priority overtake and
# deadline-expiry wakeups (tsan territory), and the live-ingest
# differential runs session reads against a concurrent writer.  The
# full serve label (these suites plus the A17 loadgen smoke) also runs
# via ctest under BOTH presets below.
FILTER+=':QueryLangParse.*:QueryLangFuzz.*:*QueryLangDifferential*'
FILTER+=':ServeScheduler.*:ServeAccounting.*:ServeLiveIngest.*'
export MSSG_CRASH_SWEEP_STRIDE="${MSSG_CRASH_SWEEP_STRIDE:-7}"

run_preset() {
  local preset="$1" build_dir="$2"
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] running filtered suites ==="
  TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_stack_use_after_return=1 strict_string_checks=1" \
  LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/asan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    "$build_dir/tests/mssg_tests" --gtest_filter="$FILTER" \
    --gtest_brief=1
  if [ "$preset" = tsan ]; then
    echo "=== [$preset] ctest -L concurrency ==="
    TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
      ctest --test-dir "$build_dir" -L concurrency --output-on-failure
  fi
  # The io label (multi-lane engine, async cache protocols, the A13
  # smoke) runs under BOTH presets: tsan for the lane handoffs, asan for
  # the iovec arithmetic in the vectored read/write paths.
  echo "=== [$preset] ctest -L io ==="
  TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_stack_use_after_return=1 strict_string_checks=1" \
  LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/asan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$build_dir" -L io --output-on-failure
  # The analytics label (VertexProgram engine suites + the A14 smoke)
  # also runs under BOTH presets: tsan for the rank threads racing the
  # shared budget/cache, asan for the slot/bitset arithmetic in the
  # engine's frontier machinery.
  echo "=== [$preset] ctest -L analytics ==="
  TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_stack_use_after_return=1 strict_string_checks=1" \
  LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/asan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$build_dir" -L analytics --output-on-failure
  # The mmap label (MappedFile/MappedBlockSource mechanics, mmap-on/off
  # equivalence, bit-rot parity, the A15 smoke) also runs under BOTH
  # presets: tsan for the mapped-active/verified-bitmap atomics against
  # concurrent scans, asan because mmap regions are *not* heap — asan
  # poisons no redzones around them, so the per-block span bounds in
  # MappedBlockSource are the only thing standing between a stale block
  # index and a silent out-of-bounds read; shadow memory for MAP_SHARED
  # pages is materialized lazily and must not trip intra-object checks.
  echo "=== [$preset] ctest -L mmap ==="
  TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_stack_use_after_return=1 strict_string_checks=1" \
  LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/asan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$build_dir" -L mmap --output-on-failure
  # The txn label (epoch/COW mechanics, snapshot stress, the interleaved
  # differential harness, the crash-label epoch sweeps' sibling suites,
  # the A16 smoke) also runs under BOTH presets: tsan because snapshot
  # isolation IS a cross-thread visibility claim — readers on retired
  # pins, the version-shelf double-check, the eager-remap handoff — and
  # asan for the captured pre-image buffers (a version outliving its
  # block, or a purge racing a reader, shows up as heap-use-after-free
  # here first).
  echo "=== [$preset] ctest -L txn ==="
  TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_stack_use_after_return=1 strict_string_checks=1" \
  LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/asan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$build_dir" -L txn --output-on-failure
  # The serve label (query-language parse/fuzz/differential, the SLO
  # scheduler invariants, the A17 loadgen smoke) also runs under BOTH
  # presets: tsan for the admission queue's waiter set and the open-loop
  # harness's dispatcher/worker threads, asan-ubsan for the hand-written
  # lexer over hostile bytes (the fuzz corpus exists to catch exactly
  # the out-of-bounds reads asan sees first).
  echo "=== [$preset] ctest -L serve ==="
  TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_stack_use_after_return=1 strict_string_checks=1" \
  LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/asan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$build_dir" -L serve --output-on-failure
  echo "=== [$preset] OK ==="
}

TARGET="${1:-all}"
case "$TARGET" in
  tsan)       run_preset tsan build-tsan ;;
  asan-ubsan) run_preset asan-ubsan build-asan ;;
  all)        run_preset tsan build-tsan
              run_preset asan-ubsan build-asan ;;
  *) echo "usage: $0 [tsan|asan-ubsan]" >&2; exit 2 ;;
esac
