#!/usr/bin/env python3
"""Convert Google-Benchmark console output from the MSSG bench binaries
into tidy CSV, one row per benchmark with its user counters as columns.

Usage:
    for b in build/bench/*; do $b; done 2>&1 | tools/bench_to_csv.py > results.csv
    tools/bench_to_csv.py bench_output.txt > results.csv

The benchmark name is split on '/' into up to five `name_partN` columns
(e.g. Fig5_4 / grDB / pathlen:5), which makes pivoting per figure easy.
"""
import csv
import re
import sys

ROW = re.compile(
    r"^(?P<name>\S+)\s+(?P<time>[\d.]+) (?P<time_unit>\w+)\s+"
    r"(?P<cpu>[\d.]+) \w+\s+(?P<iterations>\d+)(?P<counters>.*)$"
)
COUNTER = re.compile(r"(\w+)=([\d.]+[kMGTm]?)(?:/s)?")

SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9, "T": 1e12, "m": 1e-3}


def parse_value(text: str) -> float:
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def main() -> int:
    source = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    rows = []
    counter_keys = []
    for line in source:
        m = ROW.match(line.strip())
        if not m or m.group("name") in ("Benchmark",):
            continue
        row = {
            "name": m.group("name"),
            "time": float(m.group("time")),
            "time_unit": m.group("time_unit"),
            "cpu": float(m.group("cpu")),
            "iterations": int(m.group("iterations")),
        }
        for i, part in enumerate(m.group("name").split("/")[:5]):
            row[f"name_part{i}"] = part
        for key, value in COUNTER.findall(m.group("counters")):
            row[key] = parse_value(value)
            if key not in counter_keys:
                counter_keys.append(key)
        rows.append(row)

    if not rows:
        print("no benchmark rows found", file=sys.stderr)
        return 1

    base = ["name", "name_part0", "name_part1", "name_part2", "name_part3",
            "name_part4", "time", "time_unit", "cpu", "iterations"]
    writer = csv.DictWriter(sys.stdout, fieldnames=base + counter_keys,
                            restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return 0


if __name__ == "__main__":
    sys.exit(main())
